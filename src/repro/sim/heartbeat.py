"""Heartbeat-based failure detection for the K-nary tree (Section 3.1.1).

"Each KT node monitors all K children KT nodes for faults using
heartbeats sent periodically at certain time interval."  This module
runs that protocol on the discrete-event engine:

* every materialised KT node's *host virtual server* sends a heartbeat
  to its parent's host every ``heartbeat_interval``;
* a parent that misses ``miss_threshold`` consecutive heartbeats from a
  child declares it failed and triggers a tree repair (re-planting the
  subtree from the current ring state);
* the trace records detection latency (crash -> declaration) and repair
  latency (declaration -> tree stable), in simulated time.

The paper's claim that the tree "can be completely reconstructed in
O(log_K N) time in a top-down fashion" then becomes measurable: repair
latency is bounded by tree height x refresh-pass time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dht.chord import ChordRing
from repro.dht.churn import crash_node
from repro.exceptions import SimulationError
from repro.ktree.tree import KnaryTree
from repro.sim.engine import Simulator


@dataclass
class FailureEvent:
    """One detected failure and its handling latencies."""

    crashed_node: int
    crash_time: float
    detect_time: float
    repair_time: float
    refresh_passes: int

    @property
    def detection_latency(self) -> float:
        return self.detect_time - self.crash_time

    @property
    def repair_latency(self) -> float:
        return self.repair_time - self.detect_time


@dataclass
class HeartbeatTrace:
    """Outcome of a heartbeat-monitoring simulation."""

    heartbeats_sent: int = 0
    failures: list[FailureEvent] = field(default_factory=list)

    @property
    def max_detection_latency(self) -> float:
        return max((f.detection_latency for f in self.failures), default=0.0)

    @property
    def max_repair_passes(self) -> int:
        return max((f.refresh_passes for f in self.failures), default=0)


class HeartbeatMonitor:
    """Runs the tree's heartbeat protocol over a simulated clock.

    Parameters
    ----------
    ring, tree:
        The monitored system; the tree must be materialised (fully or
        the lazily-built working set).
    heartbeat_interval:
        Simulated time between heartbeats on every parent-child edge.
    miss_threshold:
        Consecutive missed heartbeats before a child is declared failed.
    """

    def __init__(
        self,
        ring: ChordRing,
        tree: KnaryTree,
        heartbeat_interval: float = 1.0,
        miss_threshold: int = 3,
    ):
        if heartbeat_interval <= 0:
            raise SimulationError("heartbeat_interval must be positive")
        if miss_threshold < 1:
            raise SimulationError("miss_threshold must be >= 1")
        self.ring = ring
        self.tree = tree
        self.heartbeat_interval = heartbeat_interval
        self.miss_threshold = miss_threshold
        self.sim = Simulator()
        self.trace = HeartbeatTrace()
        self._crashed: dict[int, float] = {}  # node index -> crash time
        self._handled: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def detection_bound(self) -> float:
        """Worst-case detection latency: threshold x interval (+1 period)."""
        return (self.miss_threshold + 1) * self.heartbeat_interval

    def schedule_crash(self, node_index: int, at_time: float) -> None:
        """Crash a physical node at a simulated instant."""
        node = self.ring.nodes[node_index]

        def do_crash(sim: Simulator) -> None:
            crash_node(self.ring, node)
            self._crashed[node_index] = sim.now

        self.sim.schedule_at(at_time, do_crash, label=f"crash-{node_index}")

    def run(self, until: float) -> HeartbeatTrace:
        """Run heartbeat rounds until the simulated horizon."""
        self._schedule_round(0.0)
        self.sim.run(until=until)
        return self.trace

    # ------------------------------------------------------------------
    def _schedule_round(self, at_time: float) -> None:
        self.sim.schedule_at(at_time, self._heartbeat_round, label="heartbeat-round")

    def _heartbeat_round(self, sim: Simulator) -> None:
        """One heartbeat period: every live child pings its parent.

        Parents notice children whose hosts died; after ``miss_threshold``
        periods without contact the failure is declared and repaired.
        Modelled at round granularity: a dead host misses every round, so
        declaration happens exactly ``miss_threshold`` rounds after the
        crash — matching the per-edge timer protocol without per-edge
        state.
        """
        # Send heartbeats (count live parent-child edges).
        for node in self.tree.iter_nodes():
            for child in node.materialized_children():
                if child.host_vs.owner.alive:
                    self.trace.heartbeats_sent += 1

        # Declare failures whose miss window has elapsed.
        for node_index, crash_time in list(self._crashed.items()):
            if node_index in self._handled:
                continue
            elapsed = sim.now - crash_time
            if elapsed >= self.miss_threshold * self.heartbeat_interval:
                self._handled.add(node_index)
                detect_time = sim.now
                passes = 0
                while passes < 64:
                    passes += 1
                    if sum(self.tree.refresh().values()) == 0:
                        break
                self.trace.failures.append(
                    FailureEvent(
                        crashed_node=node_index,
                        crash_time=crash_time,
                        detect_time=detect_time,
                        repair_time=sim.now + passes * self.heartbeat_interval,
                        refresh_passes=passes,
                    )
                )
        self._schedule_round(sim.now + self.heartbeat_interval)
