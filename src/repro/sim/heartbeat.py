"""Heartbeat-based failure detection for the K-nary tree (Section 3.1.1).

"Each KT node monitors all K children KT nodes for faults using
heartbeats sent periodically at certain time interval."  This module
runs that protocol on the discrete-event engine:

* every materialised KT node's *host virtual server* sends a heartbeat
  to its parent's host every ``heartbeat_interval``;
* a parent that misses ``miss_threshold`` consecutive heartbeats from a
  child declares it failed and triggers a tree repair (re-planting the
  subtree from the current ring state);
* the trace records detection latency (crash -> declaration) and repair
  latency (declaration -> tree stable), in simulated time.

The paper's claim that the tree "can be completely reconstructed in
O(log_K N) time in a top-down fashion" then becomes measurable: repair
latency is bounded by tree height x refresh-pass time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.churn import crash_node
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import SimulationError
from repro.faults.injector import FaultInjector, ensure_injector
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.ktree.tree import KnaryTree
from repro.sim.engine import Simulator
from repro.util.rng import ensure_rng


@dataclass
class FailureEvent:
    """One detected failure and its handling latencies."""

    crashed_node: int
    crash_time: float
    detect_time: float
    repair_time: float
    refresh_passes: int

    @property
    def detection_latency(self) -> float:
        return self.detect_time - self.crash_time

    @property
    def repair_latency(self) -> float:
        return self.repair_time - self.detect_time


@dataclass
class HeartbeatTrace:
    """Outcome of a heartbeat-monitoring simulation."""

    heartbeats_sent: int = 0
    failures: list[FailureEvent] = field(default_factory=list)
    #: Heartbeats lost to injected faults (the child was alive).
    heartbeats_dropped: int = 0
    #: Verification probes dispatched after a suspicion built up.
    probes_sent: int = 0
    #: Suspicions that a probe refuted (the child's host was alive all
    #: along — its heartbeats were merely dropped in flight).
    false_suspicions: int = 0
    #: Heartbeats that could not cross an active partition (distinct
    #: from in-flight drops: the edge itself is severed).
    heartbeats_blocked: int = 0
    #: Parent-child edges declared orphaned after ``miss_threshold``
    #: blocked periods — each marks a subtree cut off by the partition.
    orphaned_subtrees: int = 0
    #: Tree refresh passes spent re-grafting orphaned subtrees at heal.
    regraft_passes: int = 0
    #: Partitions that healed during the simulated horizon.
    partitions_healed: int = 0

    @property
    def max_detection_latency(self) -> float:
        return max((f.detection_latency for f in self.failures), default=0.0)

    @property
    def max_repair_passes(self) -> int:
        return max((f.refresh_passes for f in self.failures), default=0)


class HeartbeatMonitor:
    """Runs the tree's heartbeat protocol over a simulated clock.

    Parameters
    ----------
    ring, tree:
        The monitored system; the tree must be materialised (fully or
        the lazily-built working set).
    heartbeat_interval:
        Simulated time between heartbeats on every parent-child edge.
    miss_threshold:
        Consecutive missed heartbeats before a child is declared failed.
    faults:
        Optional fault plan/injector: each heartbeat on a live edge may
        be dropped in flight.  ``miss_threshold`` consecutive drops from
        a *live* child build a suspicion, which is checked by a direct
        probe one backoff later instead of immediately repairing the
        tree — the probe refutes it (a *false suspicion*) and the miss
        counter restarts, so drop faults cost probes but never trigger
        spurious reconstruction.
    retry:
        Backoff policy for suspicion probes (only used under faults).
    rng:
        Seed/generator for probe backoff jitter; only consumed when a
        suspicion actually fires, so fault-free runs are byte-identical
        to the pre-fault implementation.
    """

    def __init__(
        self,
        ring: ChordRing,
        tree: KnaryTree,
        heartbeat_interval: float = 1.0,
        miss_threshold: int = 3,
        faults: FaultPlan | FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        rng: int | None | np.random.Generator = None,
    ):
        if heartbeat_interval <= 0:
            raise SimulationError("heartbeat_interval must be positive")
        if miss_threshold < 1:
            raise SimulationError("miss_threshold must be >= 1")
        self.ring = ring
        self.tree = tree
        self.heartbeat_interval = heartbeat_interval
        self.miss_threshold = miss_threshold
        self.faults = ensure_injector(faults)
        self.retry = retry if retry is not None else RetryPolicy()
        self.gen = ensure_rng(rng)
        self.sim = Simulator()
        self.trace = HeartbeatTrace()
        self._crashed: dict[int, float] = {}  # node index -> crash time
        self._handled: set[int] = set()
        self._misses: dict[int, int] = {}  # child host vs_id -> consecutive drops
        self._probing: set[int] = set()  # child host vs_ids with a probe in flight
        self._component_of: dict[int, int] | None = None  # active partition map
        # Partition bookkeeping is keyed by the (parent vs, child vs)
        # pair: a host VS can carry several KT nodes, so the child vs_id
        # alone would conflate a severed edge with an intact one.
        self._blocked_misses: dict[tuple[int, int], int] = {}
        self._orphaned: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    @property
    def detection_bound(self) -> float:
        """Worst-case detection latency: threshold x interval (+1 period)."""
        return (self.miss_threshold + 1) * self.heartbeat_interval

    def schedule_crash(self, node_index: int, at_time: float) -> None:
        """Crash a physical node at a simulated instant."""
        node = self.ring.nodes[node_index]

        def do_crash(sim: Simulator) -> None:
            crash_node(self.ring, node)
            self._crashed[node_index] = sim.now

        self.sim.schedule_at(at_time, do_crash, label=f"crash-{node_index}")

    def schedule_partition(
        self,
        components: list[list[int]],
        at_time: float,
        heal_at: float,
    ) -> None:
        """Sever the network into components between two simulated instants.

        While the partition is active a heartbeat whose parent-child edge
        crosses components is *blocked* (the link is severed, not lossy);
        after ``miss_threshold`` blocked periods the parent declares the
        subtree below that edge orphaned — exactly once per edge, so the
        trace counts orphaned subtrees, not repeated timeouts.  No probe
        is dispatched for a blocked edge: a verification probe would be
        severed by the same cut.

        At ``heal_at`` the components reunify: the map is cleared, miss
        counters of orphaned edges restart, and bounded tree refresh
        passes re-graft any structure that drifted during the window
        (counted as ``regraft_passes``).
        """
        if heal_at <= at_time:
            raise SimulationError("heal_at must be after at_time")
        if len(components) < 2:
            raise SimulationError("a partition needs at least 2 components")
        component_of: dict[int, int] = {}
        for ci, members in enumerate(components):
            for node_index in members:
                if node_index in component_of:
                    raise SimulationError(
                        f"node {node_index} listed in two components"
                    )
                component_of[node_index] = ci

        def activate(sim: Simulator) -> None:
            self._component_of = component_of

        def heal(sim: Simulator) -> None:
            self._component_of = None
            self._blocked_misses.clear()
            self._orphaned.clear()
            passes = 0
            while passes < 64:
                passes += 1
                self.trace.regraft_passes += 1
                if sum(self.tree.refresh().values()) == 0:
                    break
            self.trace.partitions_healed += 1

        self.sim.schedule_at(at_time, activate, label="partition-activate")
        self.sim.schedule_at(heal_at, heal, label="partition-heal")

    def _edge_blocked(self, parent_index: int, child_index: int) -> bool:
        """Whether an active partition severs the parent-child edge."""
        assignment = self._component_of
        if assignment is None:
            return False
        return assignment.get(parent_index, 0) != assignment.get(child_index, 0)

    def run(self, until: float) -> HeartbeatTrace:
        """Run heartbeat rounds until the simulated horizon."""
        self._schedule_round(0.0)
        self.sim.run(until=until)
        return self.trace

    # ------------------------------------------------------------------
    def _schedule_round(self, at_time: float) -> None:
        self.sim.schedule_at(at_time, self._heartbeat_round, label="heartbeat-round")

    def _dispatch_probe(self, host_vs: VirtualServer) -> None:
        """Verify a suspicion with a direct probe before declaring failure.

        The probe flies one seeded backoff later (engine timer).  If the
        suspect's host turns out alive the suspicion was *false* — its
        heartbeats were dropped in flight — and the edge's miss counter
        restarts; a genuinely dead host is left to the crash-declaration
        path, which owns detection-latency accounting.
        """
        edge = host_vs.vs_id
        if edge in self._probing:
            return
        self._probing.add(edge)

        def probe(sim: Simulator) -> None:
            self._probing.discard(edge)
            self.trace.probes_sent += 1
            if host_vs.owner.alive:
                self.trace.false_suspicions += 1
                self._misses[edge] = 0

        self.sim.schedule_retry(
            self.retry, 1, probe, self.gen, label=f"probe-{edge}"
        )

    def _heartbeat_round(self, sim: Simulator) -> None:
        """One heartbeat period: every live child pings its parent.

        Parents notice children whose hosts died; after ``miss_threshold``
        periods without contact the failure is declared and repaired.
        Modelled at round granularity: a dead host misses every round, so
        declaration happens exactly ``miss_threshold`` rounds after the
        crash — matching the per-edge timer protocol without per-edge
        state.
        """
        # Send heartbeats (count live parent-child edges).  Under an
        # injected fault plan a heartbeat from a live child may be lost
        # in flight; miss_threshold consecutive losses on one edge make
        # the parent suspect the child and dispatch a verification probe.
        faults = self.faults
        for node in self.tree.iter_nodes():
            for child in node.materialized_children():
                if not child.host_vs.owner.alive:
                    continue
                edge = child.host_vs.vs_id
                if self._edge_blocked(
                    node.host_vs.owner.index, child.host_vs.owner.index
                ):
                    self.trace.heartbeats_blocked += 1
                    cut = (node.host_vs.vs_id, edge)
                    blocked = self._blocked_misses.get(cut, 0) + 1
                    self._blocked_misses[cut] = blocked
                    if blocked >= self.miss_threshold and cut not in self._orphaned:
                        self._orphaned.add(cut)
                        self.trace.orphaned_subtrees += 1
                    continue
                if faults is not None and faults.drop(
                    "heartbeat", f"edge:{edge}"
                ):
                    self.trace.heartbeats_dropped += 1
                    misses = self._misses.get(edge, 0) + 1
                    self._misses[edge] = misses
                    if misses >= self.miss_threshold:
                        self._dispatch_probe(child.host_vs)
                    continue
                self._misses[edge] = 0
                self.trace.heartbeats_sent += 1

        # Declare failures whose miss window has elapsed.
        for node_index, crash_time in list(self._crashed.items()):
            if node_index in self._handled:
                continue
            elapsed = sim.now - crash_time
            if elapsed >= self.miss_threshold * self.heartbeat_interval:
                self._handled.add(node_index)
                detect_time = sim.now
                passes = 0
                while passes < 64:
                    passes += 1
                    if sum(self.tree.refresh().values()) == 0:
                        break
                self.trace.failures.append(
                    FailureEvent(
                        crashed_node=node_index,
                        crash_time=crash_time,
                        detect_time=detect_time,
                        repair_time=sim.now + passes * self.heartbeat_interval,
                        refresh_passes=passes,
                    )
                )
        self._schedule_round(sim.now + self.heartbeat_interval)
