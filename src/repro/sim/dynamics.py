"""Dynamic-load simulation: drift, flash crowds, periodic rebalancing.

The paper assumes "the load on a virtual server is stable over the
timescale it takes for the load balancing algorithm to perform".  This
module stresses that assumption: virtual-server loads evolve between
balancing rounds (multiplicative drift plus optional flash crowds) and
the balancer runs periodically; the trace records the imbalance level
over time so the stability requirement can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.balancer import LoadBalancer
from repro.core.report import BalanceReport
from repro.dht.chord import ChordRing
from repro.exceptions import SimulationError
from repro.recovery.manager import RecoveryManager
from repro.util.rng import ensure_rng
from repro.util.stats import gini_coefficient


@dataclass
class EpochStats:
    """State of the system at one epoch boundary."""

    epoch: int
    heavy_before: int
    heavy_after: int
    moved_load: float
    gini_before: float
    gini_after: float


@dataclass
class DynamicsTrace:
    """Full history of a dynamic-load run."""

    epochs: list[EpochStats] = field(default_factory=list)
    reports: list[BalanceReport] = field(default_factory=list)

    @property
    def mean_heavy_after(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([e.heavy_after for e in self.epochs]))

    @property
    def total_moved_load(self) -> float:
        return sum(e.moved_load for e in self.epochs)


class LoadDynamics:
    """Evolves virtual-server loads between balancing rounds.

    Parameters
    ----------
    drift_sigma:
        Standard deviation of the per-epoch log-normal multiplicative
        drift applied to every virtual server's load (0 disables drift).
    flash_crowd_prob:
        Per-epoch probability that one random virtual server's load is
        multiplied by ``flash_crowd_factor`` (a sudden hotspot).
    flash_crowd_factor:
        Hotspot multiplier.
    """

    def __init__(
        self,
        drift_sigma: float = 0.1,
        flash_crowd_prob: float = 0.0,
        flash_crowd_factor: float = 10.0,
        rng: int | None | np.random.Generator = None,
    ):
        if drift_sigma < 0:
            raise SimulationError("drift_sigma must be non-negative")
        if not 0.0 <= flash_crowd_prob <= 1.0:
            raise SimulationError("flash_crowd_prob must be in [0, 1]")
        if flash_crowd_factor <= 0:
            raise SimulationError("flash_crowd_factor must be positive")
        self.drift_sigma = drift_sigma
        self.flash_crowd_prob = flash_crowd_prob
        self.flash_crowd_factor = flash_crowd_factor
        self.gen = ensure_rng(rng)

    def step(self, ring: ChordRing) -> None:
        """Apply one epoch of load evolution to every virtual server."""
        vss = ring.virtual_servers
        if self.drift_sigma > 0:
            factors = np.exp(
                self.gen.normal(0.0, self.drift_sigma, size=len(vss))
            )
            for vs, f in zip(vss, factors):
                vs.load *= float(f)
        if self.flash_crowd_prob > 0 and self.gen.random() < self.flash_crowd_prob:
            victim = vss[int(self.gen.integers(len(vss)))]
            victim.load *= self.flash_crowd_factor


def run_dynamic_simulation(
    balancer: LoadBalancer | RecoveryManager,
    dynamics: LoadDynamics,
    epochs: int,
) -> DynamicsTrace:
    """Alternate load evolution and balancing for ``epochs`` epochs.

    ``balancer`` may be a plain balancer or a
    :class:`~repro.recovery.manager.RecoveryManager` wrapping one.  In
    the managed case every epoch's round runs under crash recovery:
    plan-scheduled crash points are caught, the stack is restored and
    the round re-run, so the trace always records ``epochs`` completed
    rounds.  Load evolution targets the *current* ring each epoch (a
    restart rebuilds the balancer object) and is never replayed — the
    drifted loads land in the pre-round checkpoint, so a crashed round
    re-runs against exactly the loads it first saw.
    """
    if epochs < 1:
        raise SimulationError(f"epochs must be >= 1, got {epochs}")
    trace = DynamicsTrace()
    for epoch in range(epochs):
        if isinstance(balancer, RecoveryManager):
            ring = balancer.balancer.ring
        else:
            ring = balancer.ring
        dynamics.step(ring)
        report = balancer.run_round()
        trace.reports.append(report)
        trace.epochs.append(
            EpochStats(
                epoch=epoch,
                heavy_before=report.heavy_before,
                heavy_after=report.heavy_after,
                moved_load=report.moved_load,
                gini_before=gini_coefficient(report.unit_loads_before),
                gini_after=gini_coefficient(report.unit_loads_after),
            )
        )
    return trace
