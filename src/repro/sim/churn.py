"""Churn processes over a Chord ring with a live K-nary tree.

Section 3.1.1 claims the tree is self-repairing: after any membership
change, periodic top-down checking reconstructs it in ``O(log_K N)``
time.  :class:`ChurnProcess` drives a ring through Poisson join/leave/
crash events interleaved with tree-maintenance ticks and records how
many refresh passes the tree needs to re-stabilise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.churn import ChurnStats, crash_node, join_node, leave_node
from repro.exceptions import SimulationError
from repro.faults.injector import FaultInjector, ensure_injector
from repro.faults.plan import FaultPlan
from repro.ktree.tree import KnaryTree
from repro.util.rng import ensure_rng


@dataclass
class ChurnTrace:
    """What happened during a churn simulation."""

    events: int = 0
    repairs: list[dict[str, int]] = field(default_factory=list)
    refreshes_to_stable: list[int] = field(default_factory=list)
    #: Maintenance ticks lost to injected faults (the pass ran but its
    #: messages went nowhere, burning a round without repairing).
    dropped_refreshes: int = 0
    stats: ChurnStats = field(default_factory=ChurnStats)

    @property
    def max_refreshes(self) -> int:
        return max(self.refreshes_to_stable, default=0)


class ChurnProcess:
    """Poisson churn driving a ring + tree through joins/leaves/crashes.

    Parameters
    ----------
    ring, tree:
        The system under churn.  The tree is refreshed (one maintenance
        pass per tick) after every membership event until stable.
    join_rate, leave_rate, crash_rate:
        Relative rates of the three event types.
    vs_per_join:
        Virtual servers given to each joining node.
    capacity_sampler:
        Callable returning a capacity for each joiner.
    faults:
        Optional fault plan/injector: each maintenance tick may be lost
        in flight (a ``ktree``-phase drop), burning a repair round
        without touching the tree — the tick is retried next round, so
        stabilisation slows but the bound ``max_refresh_per_event``
        still caps the loop.
    """

    def __init__(
        self,
        ring: ChordRing,
        tree: KnaryTree,
        join_rate: float = 1.0,
        leave_rate: float = 0.5,
        crash_rate: float = 0.5,
        vs_per_join: int = 5,
        capacity_sampler: Callable[[np.random.Generator], float] | None = None,
        rng: int | None | np.random.Generator = None,
        faults: FaultPlan | FaultInjector | None = None,
    ):
        if min(join_rate, leave_rate, crash_rate) < 0:
            raise SimulationError("rates must be non-negative")
        if join_rate + leave_rate + crash_rate <= 0:
            raise SimulationError("at least one rate must be positive")
        self.ring = ring
        self.tree = tree
        self.rates = np.asarray([join_rate, leave_rate, crash_rate], dtype=np.float64)
        self.vs_per_join = vs_per_join
        self.capacity_sampler: Callable[[np.random.Generator], float] = (
            capacity_sampler
            if capacity_sampler is not None
            else (lambda gen: float(gen.choice([1, 10, 100])))
        )
        self.gen = ensure_rng(rng)
        self.faults = ensure_injector(faults)

    def run(self, num_events: int, max_refresh_per_event: int = 64) -> ChurnTrace:
        """Apply ``num_events`` churn events, repairing the tree after each.

        After each membership change the tree is refreshed repeatedly
        until a pass makes no change; the number of passes needed is the
        empirical repair time in maintenance rounds.  Under a fault
        plan, a tick may be dropped in flight: it consumes one round of
        the (bounded) repair budget without refreshing anything.
        """
        trace = ChurnTrace()
        faults = self.faults
        total = self.rates.sum()
        probs = self.rates / total
        for _ in range(num_events):
            kind = int(self.gen.choice(3, p=probs))
            applied = self._apply_event(kind, trace)
            if not applied:
                continue
            trace.events += 1
            refreshes = 0
            while refreshes < max_refresh_per_event:
                refreshes += 1
                if faults is not None and faults.drop(
                    "ktree", f"refresh:{trace.events}:{refreshes}"
                ):
                    trace.dropped_refreshes += 1
                    continue
                counters = self.tree.refresh()
                trace.repairs.append(counters)
                if (
                    counters["replanted"] == 0
                    and counters["pruned"] == 0
                    and counters["grown"] == 0
                ):
                    break
            trace.refreshes_to_stable.append(refreshes)
        return trace

    def _apply_event(self, kind: int, trace: ChurnTrace) -> bool:
        alive = self.ring.alive_nodes
        if kind == 0:
            join_node(
                self.ring,
                capacity=self.capacity_sampler(self.gen),
                vs_count=self.vs_per_join,
                rng=self.gen,
                stats=trace.stats,
            )
            return True
        if len(alive) <= 1:
            return False  # never remove the last node
        victim = alive[int(self.gen.integers(len(alive)))]
        if len(victim.virtual_servers) == self.ring.num_virtual_servers:
            return False
        if kind == 1:
            leave_node(self.ring, victim, stats=trace.stats)
        else:
            crash_node(self.ring, victim, stats=trace.stats)
        return True
