"""A minimal discrete-event simulation engine.

The engine is deliberately small: a priority queue of timestamped
events, each carrying a callback.  It exists so churn experiments can
interleave node joins/leaves/crashes with periodic tree-maintenance
ticks under a controlled clock, and so tests can assert event ordering
deterministically (ties break by insertion order).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import SimulationError
from repro.faults.retry import RetryPolicy
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled event (time, sequence number, action, label)."""

    time: float
    seq: int
    action: Callable[["Simulator"], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """Priority queue of events ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[["Simulator"], None], label: str = "") -> Event:
        if time < 0:
            raise SimulationError(f"event time must be non-negative, got {time}")
        seq = next(self._counter)
        event = Event(time=time, seq=seq, action=action, label=label)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """Drives an :class:`EventQueue` until exhaustion or a time horizon.

    An enabled ``tracer`` receives one ``sim.event`` record per
    processed event (simulated time, label, sequence number); the
    default :data:`~repro.obs.trace.NULL_TRACER` keeps the hot loop
    unchanged.

    Examples
    --------
    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, lambda s: order.append("b"))
    >>> _ = sim.schedule(1.0, lambda s: order.append("a"))
    >>> sim.run()
    >>> (order, sim.now)
    (['a', 'b'], 2.0)
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self.events_processed = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def schedule(self, delay: float, action: Callable[["Simulator"], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.now + delay, action, label)

    def schedule_at(self, time: float, action: Callable[["Simulator"], None], label: str = "") -> Event:
        """Schedule ``action`` at an absolute time (must not be in the past)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time}, now is {self.now}")
        return self.queue.push(time, action, label)

    def schedule_retry(
        self,
        policy: RetryPolicy,
        attempt: int,
        action: Callable[["Simulator"], None],
        rng: np.random.Generator,
        label: str = "",
    ) -> Event:
        """Schedule retry ``attempt`` after its seeded backoff delay.

        The delay is the policy's capped exponential backoff with jitter
        drawn from ``rng`` — the simulated-time twin of
        :func:`repro.faults.retry.deliver_with_retry`, for protocols that
        recover on the event clock (e.g. heartbeat suspicion probes)
        rather than inside one synchronous phase.  ``attempt`` must stay
        within the policy's bound; exceeding it is a protocol bug, not a
        fault, and raises :class:`~repro.exceptions.SimulationError`.
        """
        if not 1 <= attempt <= policy.max_attempts:
            raise SimulationError(
                f"retry attempt {attempt} outside [1, {policy.max_attempts}]"
            )
        return self.schedule(policy.backoff_delay(attempt, rng), action, label)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Process events in order until the queue drains or ``until``.

        Events scheduled exactly at ``until`` still execute.
        """
        tracing = self.tracer.enabled
        while self.queue:
            next_time = self.queue._heap[0][0]
            if until is not None and next_time > until:
                break
            event = self.queue.pop()
            self.now = event.time
            if tracing:
                self.tracer.event(
                    "sim.event", time=event.time, label=event.label, seq=event.seq
                )
            event.action(self)
            self.events_processed += 1
            if self.events_processed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is not None and self.now < until:
            self.now = until
