"""Discrete-event simulation harness.

Provides the round/message-level timing model behind the paper's
``O(log_K N)`` claims, a generic event engine, and churn processes that
stress the K-nary tree's self-repair.
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.churn import ChurnProcess, ChurnTrace
from repro.sim.dynamics import (
    DynamicsTrace,
    EpochStats,
    LoadDynamics,
    run_dynamic_simulation,
)
from repro.sim.heartbeat import FailureEvent, HeartbeatMonitor, HeartbeatTrace
from repro.sim.protocol import TimedProtocolResult, simulate_timed_round
from repro.sim.runner import PhaseTimings, measure_phase_rounds, sweep_phase_rounds

__all__ = [
    "FailureEvent",
    "HeartbeatMonitor",
    "HeartbeatTrace",
    "Event",
    "EventQueue",
    "Simulator",
    "ChurnProcess",
    "ChurnTrace",
    "DynamicsTrace",
    "EpochStats",
    "LoadDynamics",
    "run_dynamic_simulation",
    "PhaseTimings",
    "measure_phase_rounds",
    "sweep_phase_rounds",
    "TimedProtocolResult",
    "simulate_timed_round",
]
