"""The :class:`P2PSystem` facade.

A downstream user who wants "a DHT that balances itself" should not
need to wire the ring, store, tree, replication and balancer by hand.
This facade owns all of them and keeps their derived state fresh:

* ``put``/``get``/``delete`` — object storage with automatic load
  accounting;
* ``add_node``/``remove_node``/``fail_node`` — membership, with object
  re-homing and replica refresh;
* ``rebalance`` — one four-phase balancing round (proximity-aware when
  a topology was attached);
* ``stats`` — the operator dashboard numbers.

Examples
--------
>>> from repro.app import P2PSystem, SystemConfig
>>> system = P2PSystem(SystemConfig(initial_nodes=8, seed=7))
>>> _ = system.put("movie-001", load=25.0)
>>> system.get("movie-001").load
25.0
>>> report = system.rebalance()
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport, check_conservation
from repro.dht.chord import ChordRing
from repro.dht.churn import crash_node, join_node, leave_node
from repro.dht.node import PhysicalNode
from repro.dht.replication import ReplicationManager
from repro.dht.storage import ObjectStore, StoredObject
from repro.exceptions import DHTError, ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.idspace import IdentifierSpace
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer
from repro.topology.graph import Topology
from repro.topology.routing import DistanceOracle
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.stats import gini_coefficient
from repro.workloads.capacity import GnutellaCapacityProfile


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Deployment-level configuration of a :class:`P2PSystem`."""

    initial_nodes: int = 16
    vs_per_node: int = 5
    id_bits: int = 32
    replication_factor: int = 2
    epsilon: float = 0.05
    tree_degree: int = 2
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.initial_nodes < 1:
            raise ReproError("initial_nodes must be >= 1")
        if self.vs_per_node < 1:
            raise ReproError("vs_per_node must be >= 1")
        if self.replication_factor < 0:
            raise ReproError("replication_factor must be >= 0")


@dataclass(frozen=True)
class SystemStats:
    """Operator-facing snapshot."""

    nodes: int
    virtual_servers: int
    objects: int
    total_load: float
    total_capacity: float
    load_per_capacity: float
    unit_load_gini: float
    heavy_fraction: float
    #: Full observability snapshot (counters / gauges / histogram
    #: summaries accumulated by the system's :class:`MetricsRegistry`).
    metrics: dict = field(default_factory=dict)


class P2PSystem:
    """A self-balancing, replicated P2P object store.

    Pass ``faults`` (a :class:`~repro.faults.FaultPlan` or pre-built
    :class:`~repro.faults.FaultInjector`) to run every balancing round
    in a seeded failure environment — dropped/delayed/duplicated
    protocol messages, transfers aborting mid-flight, nodes crashing
    mid-round — with the recovery machinery bounded by ``retry``.
    Rounds still complete and still conserve load; the injected faults
    and the recovery work land in each report's ``fault_stats``.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        topology: Topology | None = None,
        capacities: list[float] | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.config = config if config is not None else SystemConfig()
        # Observability: an explicit tracer/registry wins; otherwise the
        # process-wide ones (CLI --trace/--metrics-out) apply; the system
        # always owns *some* registry so stats() can report cumulative
        # protocol counters.
        self.tracer = tracer if tracer is not None else current_tracer()
        ambient = current_metrics()
        self.metrics = (
            metrics
            if metrics is not None
            else (ambient if ambient is not None else MetricsRegistry())
        )
        root = ensure_rng(self.config.seed)
        self._ring_rng, self._cap_rng, self._site_rng, self._balancer_rng, self._churn_rng = (
            spawn_rngs(root, 5)
        )
        cfg = self.config
        self.topology = topology
        self.oracle = DistanceOracle(topology) if topology is not None else None

        if capacities is None:
            caps = GnutellaCapacityProfile().sample(cfg.initial_nodes, self._cap_rng)
            capacities = caps.tolist()
        elif len(capacities) != cfg.initial_nodes:
            raise ReproError(
                f"capacities has length {len(capacities)}, expected {cfg.initial_nodes}"
            )

        sites = None
        if topology is not None:
            stubs = topology.stub_vertices
            if len(stubs) < cfg.initial_nodes:
                raise ReproError("topology too small for the requested nodes")
            sites = self._site_rng.choice(
                stubs, size=cfg.initial_nodes, replace=False
            ).tolist()

        self.ring = ChordRing(IdentifierSpace(bits=cfg.id_bits))
        self.ring.populate(
            cfg.initial_nodes,
            cfg.vs_per_node,
            capacities=capacities,
            rng=self._ring_rng,
            sites=sites,
        )
        self.store = ObjectStore(self.ring)
        self.replication = ReplicationManager(
            self.ring, replication_factor=cfg.replication_factor
        )
        self._balancer = LoadBalancer(
            self.ring,
            BalancerConfig(
                proximity_mode="aware" if topology is not None else "ignorant",
                epsilon=cfg.epsilon,
                tree_degree=cfg.tree_degree,
            ),
            topology=topology,
            oracle=self.oracle,
            rng=self._balancer_rng,
            tracer=self.tracer,
            metrics=self.metrics,
            faults=faults,
            retry=retry,
        )
        self.reports: list[BalanceReport] = []

    # ------------------------------------------------------------------
    # storage API
    # ------------------------------------------------------------------
    def put(self, name: str, load: float, size: float | None = None) -> StoredObject:
        """Store (or replace) an object; its load lands on the key owner."""
        obj = self.store.put(name, load=load, size=load if size is None else size)
        self.metrics.counter("store.puts").inc()
        return obj

    def get(self, name: str) -> StoredObject:
        self.metrics.counter("store.gets").inc()
        return self.store.get(name)

    def delete(self, name: str) -> StoredObject:
        self.metrics.counter("store.deletes").inc()
        return self.store.delete(name)

    # ------------------------------------------------------------------
    # membership API
    # ------------------------------------------------------------------
    def add_node(self, capacity: float, site: int | None = None) -> PhysicalNode:
        """Join a new peer; objects re-home and replicas refresh."""
        node = join_node(
            self.ring,
            capacity=capacity,
            vs_count=self.config.vs_per_node,
            rng=self._churn_rng,
            site=site,
        )
        self.store.rehome()
        self.replication.refresh()
        self.metrics.counter("membership.joins").inc()
        return node

    def remove_node(self, node: PhysicalNode | int) -> None:
        """Graceful departure."""
        self._depart(node, crash=False)

    def fail_node(self, node: PhysicalNode | int) -> bool:
        """Crash a peer; returns whether all data survived via replicas."""
        node_obj = self._resolve(node)
        availability = self.replication.available_after_crash({node_obj.index})
        survived = all(availability.values())
        self._depart(node_obj, crash=True)
        return survived

    def _resolve(self, node: PhysicalNode | int) -> PhysicalNode:
        if isinstance(node, PhysicalNode):
            return node
        for n in self.ring.nodes:
            if n.index == node and n.alive:
                return n
        raise DHTError(f"no alive node with index {node}")

    def _depart(self, node: PhysicalNode | int, crash: bool) -> None:
        node_obj = self._resolve(node)
        if crash:
            crash_node(self.ring, node_obj)
        else:
            leave_node(self.ring, node_obj)
        self.store.rehome()
        self.replication.refresh()
        self.metrics.counter(
            "membership.crashes" if crash else "membership.leaves"
        ).inc()

    # ------------------------------------------------------------------
    # balancing API
    # ------------------------------------------------------------------
    def rebalance(self) -> BalanceReport:
        """One four-phase balancing round; replicas refresh afterwards.

        Every round is checked against the load-conservation invariant
        (:func:`~repro.core.report.check_conservation`) before the
        report is recorded; a drifted total raises
        :class:`~repro.exceptions.ConservationError` rather than letting
        a corrupted round feed the analysis layer.
        """
        report = self._balancer.run_round()
        check_conservation(report)
        if report.fault_stats.crashed_nodes:
            # An injected mid-round crash changed membership: objects on
            # the crashed peer's region must re-home before the store's
            # consistency checks (and any subsequent put/get) run.
            self.store.rehome()
            self.metrics.counter("membership.crashes").inc(
                len(report.fault_stats.crashed_nodes)
            )
        self.replication.refresh()
        self.reports.append(report)
        return report

    def rebalance_until_stable(self, max_rounds: int = 5) -> list[BalanceReport]:
        """Rebalance until no node is heavy (or ``max_rounds``)."""
        out = []
        for _ in range(max_rounds):
            report = self.rebalance()
            out.append(report)
            if report.heavy_after == 0:
                break
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> SystemStats:
        alive = self.ring.alive_nodes
        loads = np.asarray([n.load for n in alive], dtype=np.float64)
        caps = np.asarray([n.capacity for n in alive], dtype=np.float64)
        total_load = float(loads.sum())
        total_cap = float(caps.sum())
        ratio = total_load / total_cap if total_cap else 0.0
        unit = loads / caps
        heavy = float(np.mean(loads > (1 + self.config.epsilon) * ratio * caps))
        return SystemStats(
            nodes=len(alive),
            virtual_servers=self.ring.num_virtual_servers,
            objects=self.store.num_objects,
            total_load=total_load,
            total_capacity=total_cap,
            load_per_capacity=ratio,
            unit_load_gini=gini_coefficient(unit) if len(unit) else 0.0,
            heavy_fraction=heavy,
            metrics=self.metrics.snapshot(),
        )

    def verify(self) -> None:
        """Run every consistency check (raises on corruption)."""
        self.ring.check_invariants()
        self.store.check_consistency()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"P2PSystem(nodes={s.nodes}, vs={s.virtual_servers}, "
            f"objects={s.objects}, L/C={s.load_per_capacity:.3g})"
        )
