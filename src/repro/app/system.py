"""The :class:`P2PSystem` facade.

A downstream user who wants "a DHT that balances itself" should not
need to wire the ring, store, tree, replication and balancer by hand.
This facade owns all of them and keeps their derived state fresh:

* ``put``/``get``/``delete`` — object storage with automatic load
  accounting;
* ``add_node``/``remove_node``/``fail_node`` — membership, with object
  re-homing and replica refresh;
* ``rebalance`` — one four-phase balancing round (proximity-aware when
  a topology was attached);
* ``stats`` — the operator dashboard numbers.

Examples
--------
>>> from repro.app import P2PSystem, SystemConfig
>>> system = P2PSystem(SystemConfig(initial_nodes=8, seed=7))
>>> _ = system.put("movie-001", load=25.0)
>>> system.get("movie-001").load
25.0
>>> report = system.rebalance()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport, check_conservation
from repro.dht.chord import ChordRing
from repro.dht.churn import crash_node, join_node, leave_node
from repro.dht.node import PhysicalNode
from repro.dht.replication import ReplicationManager
from repro.dht.storage import ObjectStore, StoredObject
from repro.exceptions import (
    DHTError,
    ProcessCrashError,
    RecoveryError,
    ReproError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import CRASH_SITES, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.idspace import IdentifierSpace
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer
from repro.recovery.durable import resolve_state_dir
from repro.recovery.journal import TransferJournal
from repro.recovery.manager import JOURNAL_NAME, SNAPSHOT_NAME
from repro.recovery.snapshot import SystemSnapshot
from repro.topology.graph import Topology
from repro.topology.routing import DistanceOracle
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.stats import gini_coefficient
from repro.workloads.capacity import GnutellaCapacityProfile


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Deployment-level configuration of a :class:`P2PSystem`."""

    initial_nodes: int = 16
    vs_per_node: int = 5
    id_bits: int = 32
    replication_factor: int = 2
    epsilon: float = 0.05
    tree_degree: int = 2
    seed: int | None = None

    def __post_init__(self) -> None:
        """Validate deployment dimensions; raises :class:`ReproError`."""
        if self.initial_nodes < 1:
            raise ReproError("initial_nodes must be >= 1")
        if self.vs_per_node < 1:
            raise ReproError("vs_per_node must be >= 1")
        if self.replication_factor < 0:
            raise ReproError("replication_factor must be >= 0")


@dataclass(frozen=True)
class SystemStats:
    """Operator-facing snapshot."""

    nodes: int
    virtual_servers: int
    objects: int
    total_load: float
    total_capacity: float
    load_per_capacity: float
    unit_load_gini: float
    heavy_fraction: float
    #: Full observability snapshot (counters / gauges / histogram
    #: summaries accumulated by the system's :class:`MetricsRegistry`).
    metrics: dict[str, Any] = field(default_factory=dict)


class P2PSystem:
    """A self-balancing, replicated P2P object store.

    Pass ``faults`` (a :class:`~repro.faults.FaultPlan` or pre-built
    :class:`~repro.faults.FaultInjector`) to run every balancing round
    in a seeded failure environment — dropped/delayed/duplicated
    protocol messages, transfers aborting mid-flight, nodes crashing
    mid-round — with the recovery machinery bounded by ``retry``.
    Rounds still complete and still conserve load; the injected faults
    and the recovery work land in each report's ``fault_stats``.

    Pass ``durable=True`` (or an explicit ``state_dir``) to run every
    round under the crash-recovery subsystem: transfer intents are
    write-aheaded to a :class:`~repro.recovery.TransferJournal`, each
    round opens with an atomic :class:`~repro.recovery.SystemSnapshot`
    checkpoint (ring, store, RNG streams, fault-log position), and a
    plan-scheduled :class:`~repro.faults.CrashPoint` is recovered *in
    place* — restore + journal replay — so ``rebalance()`` returns the
    same digest-identical report an uncrashed run would.  The state
    directory defaults to ``$REPRO_STATE_DIR`` or ``.repro-state``.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        topology: Topology | None = None,
        capacities: list[float] | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        state_dir: str | Path | None = None,
        durable: bool = False,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        # Observability: an explicit tracer/registry wins; otherwise the
        # process-wide ones (CLI --trace/--metrics-out) apply; the system
        # always owns *some* registry so stats() can report cumulative
        # protocol counters.
        self.tracer = tracer if tracer is not None else current_tracer()
        ambient = current_metrics()
        self.metrics = (
            metrics
            if metrics is not None
            else (ambient if ambient is not None else MetricsRegistry())
        )
        root = ensure_rng(self.config.seed)
        self._ring_rng, self._cap_rng, self._site_rng, self._balancer_rng, self._churn_rng = (
            spawn_rngs(root, 5)
        )
        cfg = self.config
        self.topology = topology
        self.oracle = DistanceOracle(topology) if topology is not None else None

        if capacities is None:
            caps = GnutellaCapacityProfile().sample(cfg.initial_nodes, self._cap_rng)
            capacities = caps.tolist()
        elif len(capacities) != cfg.initial_nodes:
            raise ReproError(
                f"capacities has length {len(capacities)}, expected {cfg.initial_nodes}"
            )

        sites = None
        if topology is not None:
            stubs = topology.stub_vertices
            if len(stubs) < cfg.initial_nodes:
                raise ReproError("topology too small for the requested nodes")
            sites = self._site_rng.choice(
                stubs, size=cfg.initial_nodes, replace=False
            ).tolist()

        self.ring = ChordRing(IdentifierSpace(bits=cfg.id_bits))
        self.ring.populate(
            cfg.initial_nodes,
            cfg.vs_per_node,
            capacities=capacities,
            rng=self._ring_rng,
            sites=sites,
        )
        self.store = ObjectStore(self.ring)
        self.replication = ReplicationManager(
            self.ring, replication_factor=cfg.replication_factor
        )
        self._balancer = LoadBalancer(
            self.ring,
            BalancerConfig(
                proximity_mode="aware" if topology is not None else "ignorant",
                epsilon=cfg.epsilon,
                tree_degree=cfg.tree_degree,
            ),
            topology=topology,
            oracle=self.oracle,
            rng=self._balancer_rng,
            tracer=self.tracer,
            metrics=self.metrics,
            faults=faults,
            retry=retry,
        )
        self.reports: list[BalanceReport] = []
        self.state_dir: Path | None = None
        self.journal: TransferJournal | None = None
        self._in_recovery = False
        if durable or state_dir is not None:
            self.state_dir = resolve_state_dir(state_dir)
            self.journal = TransferJournal(
                self.state_dir / JOURNAL_NAME,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            self._balancer.attach_journal(self.journal)

    def close(self) -> None:
        """Release the journal file handle (durable mode only)."""
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # storage API
    # ------------------------------------------------------------------
    def put(self, name: str, load: float, size: float | None = None) -> StoredObject:
        """Store (or replace) an object; its load lands on the key owner."""
        obj = self.store.put(name, load=load, size=load if size is None else size)
        self.metrics.counter("store.puts").inc()
        return obj

    def get(self, name: str) -> StoredObject:
        self.metrics.counter("store.gets").inc()
        return self.store.get(name)

    def delete(self, name: str) -> StoredObject:
        self.metrics.counter("store.deletes").inc()
        return self.store.delete(name)

    # ------------------------------------------------------------------
    # membership API
    # ------------------------------------------------------------------
    def add_node(self, capacity: float, site: int | None = None) -> PhysicalNode:
        """Join a new peer; objects re-home and replicas refresh."""
        node = join_node(
            self.ring,
            capacity=capacity,
            vs_count=self.config.vs_per_node,
            rng=self._churn_rng,
            site=site,
        )
        self.store.rehome()
        self.replication.refresh()
        self.metrics.counter("membership.joins").inc()
        return node

    def remove_node(self, node: PhysicalNode | int) -> None:
        """Graceful departure."""
        self._depart(node, crash=False)

    def fail_node(self, node: PhysicalNode | int) -> bool:
        """Crash a peer; returns whether all data survived via replicas."""
        node_obj = self._resolve(node)
        availability = self.replication.available_after_crash({node_obj.index})
        survived = all(availability.values())
        self._depart(node_obj, crash=True)
        return survived

    def _resolve(self, node: PhysicalNode | int) -> PhysicalNode:
        if isinstance(node, PhysicalNode):
            return node
        for n in self.ring.nodes:
            if n.index == node and n.alive:
                return n
        raise DHTError(f"no alive node with index {node}")

    def _depart(self, node: PhysicalNode | int, crash: bool) -> None:
        node_obj = self._resolve(node)
        if crash:
            crash_node(self.ring, node_obj)
        else:
            leave_node(self.ring, node_obj)
        self.store.rehome()
        self.replication.refresh()
        self.metrics.counter(
            "membership.crashes" if crash else "membership.leaves"
        ).inc()

    # ------------------------------------------------------------------
    # balancing API
    # ------------------------------------------------------------------
    def rebalance(self) -> BalanceReport:
        """One four-phase balancing round; replicas refresh afterwards.

        Every round is checked against the load-conservation invariant
        (:func:`~repro.core.report.check_conservation`) before the
        report is recorded; a drifted total raises
        :class:`~repro.exceptions.ConservationError` rather than letting
        a corrupted round feed the analysis layer.

        In durable mode the round runs checkpoint-first and any
        injected whole-process crash is recovered in place (see the
        class docstring); the caller always receives the round's final
        report.
        """
        report = self._run_round_durably()
        check_conservation(report)
        if report.fault_stats.crashed_nodes:
            # An injected mid-round crash changed membership: objects on
            # the crashed peer's region must re-home before the store's
            # consistency checks (and any subsequent put/get) run.
            self.store.rehome()
            self.metrics.counter("membership.crashes").inc(
                len(report.fault_stats.crashed_nodes)
            )
        self.replication.refresh()
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # durability (journal + checkpoint/restore)
    # ------------------------------------------------------------------
    def _run_round_durably(self) -> BalanceReport:
        """Checkpoint-first round execution, recovering injected crashes.

        Without a journal this is a plain ``run_round``.  With one, the
        loop is bounded by the number of crash sites: every
        :class:`~repro.faults.CrashPoint` fires at most once per round
        (fired sites are disarmed from the journal's crash markers), so
        needing more re-runs than sites means recovery is diverging.
        """
        if self.journal is None:
            return self._balancer.run_round()
        for _attempt in range(len(CRASH_SITES) + 1):
            if not self._in_recovery:
                self._checkpoint()
            try:
                report = self._balancer.run_round()
            except ProcessCrashError as crash:
                self.journal.record_crash(crash.round_index, crash.site)
                self.metrics.counter("recovery.crashes_caught").inc()
                self._restore()
                continue
            self._in_recovery = False
            return report
        raise RecoveryError(
            "crash recovery did not converge: more restarts than crash "
            "sites in one round (journal or snapshot corruption?)"
        )

    def _extra_rngs(self) -> dict[str, np.random.Generator]:
        """The system-level RNG streams a snapshot must cover."""
        return {
            "balancer_root": self._balancer_rng,
            "capacity": self._cap_rng,
            "churn": self._churn_rng,
            "ring": self._ring_rng,
            "site": self._site_rng,
        }

    def _checkpoint(self) -> None:
        """Atomically snapshot the whole system and journal the marker."""
        assert self.journal is not None and self.state_dir is not None
        snapshot = SystemSnapshot.capture(
            self._balancer, store=self.store, extra_rngs=self._extra_rngs()
        )
        snapshot.save(self.state_dir / SNAPSHOT_NAME)
        self.journal.record(
            "checkpoint",
            round=snapshot.round_index,
            digest=snapshot.canonical_digest(),
        )
        self.metrics.counter("recovery.checkpoints").inc()

    def _restore(self) -> None:
        """Restore the latest checkpoint in place and arm journal replay."""
        assert self.journal is not None and self.state_dir is not None
        snapshot = SystemSnapshot.load(self.state_dir / SNAPSHOT_NAME)
        snapshot.restore(
            self._balancer, store=self.store, extra_rngs=self._extra_rngs()
        )
        tail = self.journal.tail_after_last_checkpoint()
        injector = self._balancer.faults
        if injector is not None:
            for round_index, site in self.journal.crash_markers(tail):
                injector.disarm_crash(round_index, site)
        self.journal.begin_replay(tail)
        self._in_recovery = True
        self.metrics.counter("recovery.restores").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "recovery.restore",
                round=snapshot.round_index,
                replay_records=len(tail),
            )

    def rebalance_until_stable(self, max_rounds: int = 5) -> list[BalanceReport]:
        """Rebalance until no node is heavy (or ``max_rounds``)."""
        out: list[BalanceReport] = []
        for _ in range(max_rounds):
            report = self.rebalance()
            out.append(report)
            if report.heavy_after == 0:
                break
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> SystemStats:
        alive = self.ring.alive_nodes
        loads = np.asarray([n.load for n in alive], dtype=np.float64)
        caps = np.asarray([n.capacity for n in alive], dtype=np.float64)
        total_load = float(loads.sum())
        total_cap = float(caps.sum())
        ratio = total_load / total_cap if total_cap else 0.0
        unit = loads / caps
        heavy = float(np.mean(loads > (1 + self.config.epsilon) * ratio * caps))
        return SystemStats(
            nodes=len(alive),
            virtual_servers=self.ring.num_virtual_servers,
            objects=self.store.num_objects,
            total_load=total_load,
            total_capacity=total_cap,
            load_per_capacity=ratio,
            unit_load_gini=gini_coefficient(unit) if len(unit) else 0.0,
            heavy_fraction=heavy,
            metrics=self.metrics.snapshot(),
        )

    def verify(self) -> None:
        """Run every consistency check (raises on corruption)."""
        self.ring.check_invariants()
        self.store.check_consistency()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"P2PSystem(nodes={s.nodes}, vs={s.virtual_servers}, "
            f"objects={s.objects}, L/C={s.load_per_capacity:.3g})"
        )
