"""Application-level facade: a self-balancing P2P storage system.

Everything below this package is a building block; :class:`P2PSystem`
wires them together the way a deployment would — ring + object store +
replication + K-nary tree + load balancer — behind a small imperative
API (``put``/``get``/``add_node``/``fail_node``/``rebalance``).
"""

from repro.app.system import P2PSystem, SystemConfig, SystemStats

__all__ = ["P2PSystem", "SystemConfig", "SystemStats"]
