"""Shortest-path distance oracle with per-source caching.

Transfer costs and landmark vectors are weighted shortest-path distances
in the topology.  An all-pairs matrix for 5000 vertices would cost
~200 MB; instead the oracle runs single-source Dijkstra (scipy, C speed)
on demand and caches rows in float32, so the cost is proportional to the
set of sources an experiment actually touches (landmarks + transfer
endpoints).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.exceptions import TopologyError
from repro.topology.graph import Topology


class DistanceOracle:
    """Cached single-source shortest-path queries over a :class:`Topology`.

    Parameters
    ----------
    topology:
        The weighted graph to answer queries on.
    max_cached_rows:
        LRU bound on cached source rows (each row is ``4 * n`` bytes).
        ``None`` means unbounded.
    """

    def __init__(
        self, topology: Topology, max_cached_rows: int | None = None
    ) -> None:
        self.topology = topology
        self._csr = topology.csr()
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self._max_rows = max_cached_rows
        self.dijkstra_runs = 0  # instrumentation for tests/benchmarks

    # ------------------------------------------------------------------
    def distances_from(self, source: int) -> np.ndarray:
        """Distances (latency units) from ``source`` to every vertex."""
        self._validate(source)
        row = self._rows.get(source)
        if row is not None:
            self._rows.move_to_end(source)
            return row
        dist = dijkstra(self._csr, directed=False, indices=source)
        row = dist.astype(np.float32)
        self._rows[source] = row
        self.dijkstra_runs += 1
        if self._max_rows is not None and len(self._rows) > self._max_rows:
            self._rows.popitem(last=False)
        return row

    def distances_from_many(self, sources: np.ndarray | list[int]) -> np.ndarray:
        """Stacked distance rows for several sources (shape ``(k, n)``).

        Uncached sources are deduplicated and computed in one scipy
        call, which is much faster than one call per source.  Every
        requested row is pinned in a local map for the duration of the
        call and the LRU is trimmed only after the result is stacked —
        evicting mid-batch used to recompute rows this very call had
        just produced whenever the batch exceeded ``max_cached_rows``.
        """
        src = [int(s) for s in sources]
        for s in src:
            self._validate(s)
        rows: dict[int, np.ndarray] = {}
        missing: list[int] = []
        seen_missing: set[int] = set()
        for s in src:
            if s in rows or s in seen_missing:
                continue
            cached = self._rows.get(s)
            if cached is not None:
                self._rows.move_to_end(s)
                rows[s] = cached
            else:
                missing.append(s)
                seen_missing.add(s)
        if missing:
            dist = np.atleast_2d(
                dijkstra(self._csr, directed=False, indices=missing)
            )
            for i, s in enumerate(missing):
                row = dist[i].astype(np.float32)
                rows[s] = row
                self._rows[s] = row
                self.dijkstra_runs += 1
        result = np.stack([rows[s] for s in src])
        if self._max_rows is not None:
            while len(self._rows) > self._max_rows:
                self._rows.popitem(last=False)
        return result

    def distance(self, u: int, v: int) -> float:
        """Shortest-path distance between two vertices."""
        self._validate(v)
        if u in self._rows:
            return float(self._rows[u][v])
        if v in self._rows:
            return float(self._rows[v][u])
        return float(self.distances_from(u)[v])

    def distances_between(self, pairs: list[tuple[int, int]]) -> np.ndarray:
        """Distances for a batch of vertex pairs.

        Sources are grouped so each distinct source costs one Dijkstra;
        the cheaper endpoint of each pair (already-cached one if any) is
        used as the source.
        """
        out = np.empty(len(pairs), dtype=np.float64)
        # Group by source, preferring endpoints already cached.
        needed: dict[int, list[tuple[int, int]]] = {}
        for idx, (u, v) in enumerate(pairs):
            if u in self._rows:
                out[idx] = float(self._rows[u][v])
            elif v in self._rows:
                out[idx] = float(self._rows[v][u])
            else:
                needed.setdefault(u, []).append((idx, v))
        if needed:
            # Read rows off the returned stack, not the cache: with a
            # tight LRU bound the batch itself may evict earlier rows.
            stacked = self.distances_from_many(list(needed.keys()))
            for row, items in zip(stacked, needed.values()):
                for idx, v in items:
                    out[idx] = float(row[v])
        return out

    # ------------------------------------------------------------------
    def _validate(self, vertex: int) -> None:
        if not 0 <= vertex < self.topology.num_vertices:
            raise TopologyError(
                f"vertex {vertex} out of range for topology with "
                f"{self.topology.num_vertices} vertices"
            )

    @property
    def cached_sources(self) -> int:
        return len(self._rows)
