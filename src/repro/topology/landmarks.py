"""Landmark selection and landmark-vector computation.

Landmark clustering (Section 4.1): every node measures its distance to a
fixed set of ``m`` landmark nodes (the paper uses 15); the resulting
*landmark vector* places the node in an m-dimensional "landmark space"
where physically close nodes land close together.

Two selection strategies are provided:

* ``"random"`` — uniform over vertices (what a deployed system without
  infrastructure support would do);
* ``"spread"`` — greedy farthest-point traversal, which maximises the
  minimum pairwise landmark distance and reduces false clustering.  The
  paper only requires "a sufficient number" of landmarks; spread
  placement is the stronger instantiation and is the default.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.routing import DistanceOracle
from repro.util.rng import ensure_rng


def select_landmarks(
    oracle: DistanceOracle,
    m: int,
    rng: int | None | np.random.Generator = None,
    strategy: str = "spread",
) -> np.ndarray:
    """Choose ``m`` landmark vertices from the topology.

    Returns vertex ids as an int64 array of length ``m``.
    """
    n = oracle.topology.num_vertices
    if not 1 <= m <= n:
        raise TopologyError(f"cannot select {m} landmarks from {n} vertices")
    gen = ensure_rng(rng)
    if strategy == "random":
        return np.sort(gen.choice(n, size=m, replace=False).astype(np.int64))
    if strategy == "spread":
        return _farthest_point_landmarks(oracle, m, gen)
    raise TopologyError(f"unknown landmark strategy {strategy!r}")


def _farthest_point_landmarks(
    oracle: DistanceOracle, m: int, gen: np.random.Generator
) -> np.ndarray:
    n = oracle.topology.num_vertices
    first = int(gen.integers(n))
    chosen = [first]
    min_dist = oracle.distances_from(first).astype(np.float64).copy()
    while len(chosen) < m:
        nxt = int(np.argmax(min_dist))
        if min_dist[nxt] <= 0:  # graph smaller than m distinct positions
            remaining = np.setdiff1d(np.arange(n), np.asarray(chosen))
            nxt = int(gen.choice(remaining))
        chosen.append(nxt)
        np.minimum(min_dist, oracle.distances_from(nxt), out=min_dist)
    return np.sort(np.asarray(chosen, dtype=np.int64))


def landmark_vectors(
    oracle: DistanceOracle,
    landmarks: np.ndarray | list[int],
    sites: np.ndarray | list[int],
) -> np.ndarray:
    """Landmark vectors ``<d_1 .. d_m>`` for each site.

    Returns a float64 array of shape ``(len(sites), m)`` where row ``i``
    is the distance of ``sites[i]`` to each landmark.  Computed with one
    multi-source Dijkstra over the landmark set.
    """
    lm = np.asarray(landmarks, dtype=np.int64)
    st = np.asarray(sites, dtype=np.int64)
    if lm.size == 0:
        raise TopologyError("need at least one landmark")
    rows = oracle.distances_from_many(lm)  # (m, n)
    return rows[:, st].T.astype(np.float64)
