"""Power-law (Barabási–Albert-like) topologies: a second graph family.

The paper evaluates only on GT-ITM transit-stub graphs; measurement work
after 2004 showed router-level Internet graphs have power-law degree
distributions.  This module generates such graphs so the proximity
machinery can be stressed on a topology with *no* engineered hierarchy:
locality then comes only from hop distance, landmarks see a flatter
distance distribution, and the aware/ignorant gap shrinks — a useful
robustness check beyond the paper's setting.

Vertices are all "stub" kind (peers can attach anywhere); the
``stub_domain`` of a vertex is a cluster label obtained from the highest-
degree neighbour (hub), which gives tests a coarse locality notion.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.exceptions import TopologyError
from repro.topology.graph import Topology, VertexInfo
from repro.util.rng import ensure_rng


def generate_power_law(
    num_vertices: int,
    attach_edges: int = 2,
    weight_range: tuple[int, int] = (1, 4),
    rng: int | None | np.random.Generator = None,
    name: str = "power-law",
) -> Topology:
    """Generate a preferential-attachment graph with random edge weights.

    Parameters
    ----------
    num_vertices:
        Graph size.
    attach_edges:
        Edges each arriving vertex attaches with (BA's ``m``).
    weight_range:
        Inclusive integer range of edge latencies.
    """
    if num_vertices < 2:
        raise TopologyError("need at least 2 vertices")
    if not 1 <= attach_edges < num_vertices:
        raise TopologyError(
            f"attach_edges must be in [1, {num_vertices - 1}], got {attach_edges}"
        )
    lo, hi = weight_range
    if not (isinstance(lo, int) and isinstance(hi, int) and 1 <= lo <= hi):
        raise TopologyError(f"invalid weight_range {weight_range}")

    gen = ensure_rng(rng)
    g = nx.Graph()
    g.add_node(0)

    # Preferential attachment via the repeated-endpoints trick.
    endpoints: list[int] = [0]
    for v in range(1, num_vertices):
        g.add_node(v)
        m = min(attach_edges, v)
        targets: set[int] = set()
        while len(targets) < m:
            if gen.random() < 0.3 or not endpoints:
                cand = int(gen.integers(v))
            else:
                cand = endpoints[int(gen.integers(len(endpoints)))]
            targets.add(cand)
        # Sorted: set order would otherwise leak into the edge-weight
        # draw sequence and the endpoints list (preferential-attachment
        # probabilities), making graphs hash-seed-dependent.
        for t in sorted(targets):
            g.add_edge(v, t, weight=int(gen.integers(lo, hi + 1)))
            endpoints.extend((v, t))

    # Cluster label: each vertex joins the cluster of its highest-degree
    # neighbour hub (or itself if it is the local hub).
    degree = dict(g.degree())
    cluster: dict[int, int] = {}
    for v in range(num_vertices):
        best = max(list(g.neighbors(v)) + [v], key=lambda u: (degree[u], -u))
        cluster[v] = best
    info = [
        VertexInfo(kind="stub", transit_domain=0, stub_domain=cluster[v])
        for v in range(num_vertices)
    ]
    return Topology(graph=g, info=info, name=name)
