"""Synthetic Internet topologies and distance queries.

The paper evaluates on two GT-ITM transit-stub topologies of ~5000
vertices ("ts5k-large" and "ts5k-small") with interdomain hops costing 3
latency units and intradomain hops 1.  This package regenerates such
topologies from the published parameters, provides a lazily-cached
Dijkstra distance oracle over the weighted graph, and selects landmark
nodes for proximity measurement.
"""

from repro.topology.graph import Topology
from repro.topology.transit_stub import (
    TransitStubParams,
    TS5K_LARGE,
    TS5K_SMALL,
    generate_transit_stub,
)
from repro.topology.powerlaw import generate_power_law
from repro.topology.routing import DistanceOracle
from repro.topology.landmarks import select_landmarks, landmark_vectors

__all__ = [
    "generate_power_law",
    "Topology",
    "TransitStubParams",
    "TS5K_LARGE",
    "TS5K_SMALL",
    "generate_transit_stub",
    "DistanceOracle",
    "select_landmarks",
    "landmark_vectors",
]
