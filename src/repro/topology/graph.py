"""The :class:`Topology` wrapper: a weighted graph with vertex roles.

Vertices are dense integers.  Every vertex is either a *transit* node or
a *stub* node; stub vertices carry the (transit domain, stub domain)
pair they belong to, which the tests use to verify locality properties
(e.g. nodes of one stub domain have near-identical landmark vectors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.exceptions import TopologyError


@dataclass(frozen=True, slots=True)
class VertexInfo:
    """Role and domain membership of one topology vertex."""

    kind: str  # "transit" | "stub"
    transit_domain: int
    stub_domain: int | None  # None for transit vertices


@dataclass
class Topology:
    """A weighted undirected graph plus vertex metadata.

    Attributes
    ----------
    graph:
        ``networkx.Graph`` whose edges carry a ``weight`` attribute in
        latency units (1 intradomain, 3 interdomain).
    info:
        Per-vertex :class:`VertexInfo`, indexed by vertex id.
    name:
        Human-readable label (e.g. ``"ts5k-large"``).
    """

    graph: nx.Graph
    info: list[VertexInfo]
    name: str = "topology"
    _csr: sp.csr_matrix | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = self.graph.number_of_nodes()
        if len(self.info) != n:
            raise TopologyError(
                f"info has {len(self.info)} entries for {n} vertices"
            )
        if n and sorted(self.graph.nodes) != list(range(n)):
            raise TopologyError("vertices must be dense integers 0..n-1")
        if n and not nx.is_connected(self.graph):
            raise TopologyError("topology must be connected")

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    @property
    def stub_vertices(self) -> np.ndarray:
        """Vertex ids of all stub nodes (P2P peers attach here)."""
        return np.asarray(
            [v for v in range(self.num_vertices) if self.info[v].kind == "stub"],
            dtype=np.int64,
        )

    @property
    def transit_vertices(self) -> np.ndarray:
        return np.asarray(
            [v for v in range(self.num_vertices) if self.info[v].kind == "transit"],
            dtype=np.int64,
        )

    def stub_domain_of(self, vertex: int) -> tuple[int, int | None]:
        """``(transit_domain, stub_domain)`` of ``vertex``."""
        inf = self.info[vertex]
        return (inf.transit_domain, inf.stub_domain)

    def csr(self) -> sp.csr_matrix:
        """Weighted adjacency in CSR form (cached) for scipy shortest paths."""
        if self._csr is None:
            self._csr = nx.to_scipy_sparse_array(
                self.graph, nodelist=range(self.num_vertices), weight="weight", format="csr"
            )
        return self._csr

    def degree_stats(self) -> dict[str, float]:
        """Mean/min/max vertex degree — used by generator sanity tests."""
        degs = np.asarray([d for _, d in self.graph.degree()], dtype=np.float64)
        return {"mean": float(degs.mean()), "min": float(degs.min()), "max": float(degs.max())}
