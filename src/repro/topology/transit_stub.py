"""GT-ITM-style transit-stub topology generation.

The paper (Section 5.1) evaluates on two ~5000-vertex transit-stub
topologies produced by GT-ITM:

* ``ts5k-large`` — 5 transit domains, 3 transit nodes per transit domain,
  5 stub domains per transit node, ~60 nodes per stub domain.  Represents
  a P2P system drawn from a few large campuses.
* ``ts5k-small`` — 120 transit domains, 5 transit nodes per transit
  domain, 4 stub domains per transit node, ~2 nodes per stub domain.
  Represents peers scattered across the whole Internet.

GT-ITM itself is a C program we cannot run offline; this module generates
graphs with the same two-level structure and the same published
parameters.  Three aspects of real GT-ITM output matter for the paper's
results and are modelled explicitly:

1. **Stub domains are LAN-like.**  GT-ITM stub domains model campus
   networks; their internal diameter is small.  ``ts5k-large`` therefore
   defaults to fully-connected stub domains (every intra-stub pair is one
   1-unit hop), which keeps intra-stub transfer distances at 1-2 latency
   units — the paper's "within 2 hops" bucket.

2. **Interdomain edge weights vary.**  GT-ITM derives edge lengths from
   Euclidean placement, so access/interdomain links are not all equal.
   We draw interdomain weights uniformly from a small integer range with
   mean 3 (the paper's interdomain hop cost).  Without this variation,
   sibling stub domains hanging off the same transit node are *provably
   indistinguishable* by landmark vectors (their members' vectors differ
   only by a per-node diagonal offset), which would make proximity-aware
   placement unable to separate them — an artifact of over-idealising
   the generator, not a property of the paper's system.

3. **Extra stub-stub edges.**  GT-ITM adds a configurable number of
   stub-stub shortcut edges; we add them between stub domains of the
   same transit domain with a small probability, further diversifying
   landmark fingerprints.

Edge weights follow the paper: each interdomain hop costs
:data:`~repro.constants.INTERDOMAIN_HOP_COST` (3, in expectation) latency
units, each intradomain hop :data:`~repro.constants.INTRADOMAIN_HOP_COST`
(1).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.constants import INTRADOMAIN_HOP_COST
from repro.exceptions import TopologyError
from repro.topology.graph import Topology, VertexInfo
from repro.util.rng import ensure_rng


@dataclass(frozen=True, slots=True)
class TransitStubParams:
    """Parameters of a transit-stub topology.

    ``extra_edge_prob_*`` control redundant intra-graph edges added on
    top of the random spanning tree that guarantees connectivity
    (probability per vertex pair; ``1.0`` yields a clique).
    ``interdomain_weight_range`` is the inclusive integer range of
    interdomain edge weights (keep the mean at 3 to match the paper's
    hop-cost rule).  ``stub_stub_edge_prob`` is the probability, per pair
    of stub domains sharing a transit domain, of one extra shortcut edge.
    """

    transit_domains: int
    transit_nodes_per_domain: int
    stub_domains_per_transit: int
    stub_nodes_mean: int
    name: str = "transit-stub"
    extra_edge_prob_transit_core: float = 0.3
    extra_edge_prob_transit_domain: float = 0.5
    extra_edge_prob_stub_domain: float = 1.0
    stub_size_jitter: float = 0.5  # stub size ~ Uniform[mean*(1-j), mean*(1+j)]
    interdomain_weight_range: tuple[int, int] = (2, 4)
    stub_stub_edge_prob: float = 0.3

    def __post_init__(self) -> None:
        if min(
            self.transit_domains,
            self.transit_nodes_per_domain,
            self.stub_domains_per_transit,
            self.stub_nodes_mean,
        ) < 1:
            raise TopologyError("all transit-stub counts must be >= 1")
        if not 0.0 <= self.stub_size_jitter < 1.0:
            raise TopologyError("stub_size_jitter must be in [0, 1)")
        lo, hi = self.interdomain_weight_range
        if not (isinstance(lo, int) and isinstance(hi, int) and 1 <= lo <= hi):
            raise TopologyError(
                f"interdomain_weight_range must be an int range >= 1, got {self.interdomain_weight_range}"
            )
        if not 0.0 <= self.stub_stub_edge_prob <= 1.0:
            raise TopologyError("stub_stub_edge_prob must be in [0, 1]")

    @property
    def expected_vertices(self) -> int:
        """Expected total vertex count."""
        transit = self.transit_domains * self.transit_nodes_per_domain
        stubs = transit * self.stub_domains_per_transit * self.stub_nodes_mean
        return transit + stubs


#: Paper's "ts5k-large": few large stub domains (campus-like clustering).
TS5K_LARGE = TransitStubParams(
    transit_domains=5,
    transit_nodes_per_domain=3,
    stub_domains_per_transit=5,
    stub_nodes_mean=60,
    name="ts5k-large",
)

#: Paper's "ts5k-small": many tiny stub domains (Internet-scattered peers).
TS5K_SMALL = TransitStubParams(
    transit_domains=120,
    transit_nodes_per_domain=5,
    stub_domains_per_transit=4,
    stub_nodes_mean=2,
    name="ts5k-small",
)


def generate_transit_stub(
    params: TransitStubParams,
    rng: int | None | np.random.Generator = None,
) -> Topology:
    """Generate one transit-stub topology instance.

    The construction:

    1. Connect the transit domains with a random spanning tree plus extra
       random domain pairs; each domain-level edge is realised between a
       random transit node of each side (interdomain weight).
    2. Inside each transit domain, connect the transit nodes with a random
       spanning tree plus extra edges (intradomain weight).
    3. Attach ``stub_domains_per_transit`` stub domains to every transit
       node; each stub domain is a random connected graph (intradomain
       weight) joined to its transit node through one gateway stub vertex
       (interdomain weight).
    4. Add stub-stub shortcut edges between stub domains of the same
       transit domain with probability ``stub_stub_edge_prob`` per pair.
    """
    gen = ensure_rng(rng)
    g = nx.Graph()
    info: list[VertexInfo] = []

    def new_vertex(kind: str, td: int, sd: int | None) -> int:
        v = len(info)
        info.append(VertexInfo(kind=kind, transit_domain=td, stub_domain=sd))
        g.add_node(v)
        return v

    def interdomain_weight() -> int:
        lo, hi = params.interdomain_weight_range
        return int(gen.integers(lo, hi + 1))

    # --- transit nodes -------------------------------------------------
    transit_by_domain: list[list[int]] = []
    for td in range(params.transit_domains):
        members = [new_vertex("transit", td, None) for _ in range(params.transit_nodes_per_domain)]
        transit_by_domain.append(members)
        _connect_randomly(
            g, members, gen,
            extra_prob=params.extra_edge_prob_transit_domain,
            weight=INTRADOMAIN_HOP_COST,
        )

    # --- transit core (domain-level connectivity) ----------------------
    domain_pairs = _random_tree_edges(params.transit_domains, gen)
    for a, b in _with_extra_pairs(
        domain_pairs, params.transit_domains, params.extra_edge_prob_transit_core, gen
    ):
        u = transit_by_domain[a][int(gen.integers(len(transit_by_domain[a])))]
        v = transit_by_domain[b][int(gen.integers(len(transit_by_domain[b])))]
        g.add_edge(u, v, weight=interdomain_weight())

    # --- stub domains ---------------------------------------------------
    stub_domain_id = 0
    stub_members: dict[int, list[int]] = {}
    stub_domains_by_td: dict[int, list[int]] = {td: [] for td in range(params.transit_domains)}
    for td, members in enumerate(transit_by_domain):
        for t_vertex in members:
            for _ in range(params.stub_domains_per_transit):
                size = _stub_size(params, gen)
                stub = [new_vertex("stub", td, stub_domain_id) for _ in range(size)]
                _connect_randomly(
                    g, stub, gen,
                    extra_prob=params.extra_edge_prob_stub_domain,
                    weight=INTRADOMAIN_HOP_COST,
                )
                gateway = stub[int(gen.integers(len(stub)))]
                g.add_edge(t_vertex, gateway, weight=interdomain_weight())
                stub_members[stub_domain_id] = stub
                stub_domains_by_td[td].append(stub_domain_id)
                stub_domain_id += 1

    # --- stub-stub shortcuts within each transit domain ------------------
    if params.stub_stub_edge_prob > 0:
        for td, domains in stub_domains_by_td.items():
            for i in range(len(domains)):
                for j in range(i + 1, len(domains)):
                    if gen.random() < params.stub_stub_edge_prob:
                        a_members = stub_members[domains[i]]
                        b_members = stub_members[domains[j]]
                        a = a_members[int(gen.integers(len(a_members)))]
                        b = b_members[int(gen.integers(len(b_members)))]
                        g.add_edge(a, b, weight=interdomain_weight())

    return Topology(graph=g, info=info, name=params.name)


def _stub_size(params: TransitStubParams, gen: np.random.Generator) -> int:
    lo = max(1, int(round(params.stub_nodes_mean * (1 - params.stub_size_jitter))))
    hi = max(lo, int(round(params.stub_nodes_mean * (1 + params.stub_size_jitter))))
    return int(gen.integers(lo, hi + 1))


def _random_tree_edges(n: int, gen: np.random.Generator) -> list[tuple[int, int]]:
    """Edges of a uniform random attachment tree over ``range(n)``."""
    order = gen.permutation(n)
    edges = []
    for i in range(1, n):
        parent = order[int(gen.integers(i))]
        edges.append((int(order[i]), int(parent)))
    return edges


def _with_extra_pairs(
    tree_edges: list[tuple[int, int]],
    n: int,
    prob: float,
    gen: np.random.Generator,
) -> list[tuple[int, int]]:
    """Tree edges plus each non-tree pair independently with ``prob``.

    ``prob >= 1`` yields all pairs (a clique).  For large ``n`` the number
    of candidate pairs is sampled (binomial) rather than enumerated,
    keeping generation O(edges).
    """
    existing = {frozenset(e) for e in tree_edges}
    out = list(tree_edges)
    if n < 2 or prob <= 0.0:
        return out
    if prob >= 1.0:
        for a in range(n):
            for b in range(a + 1, n):
                if frozenset((a, b)) not in existing:
                    out.append((a, b))
        return out
    total_pairs = n * (n - 1) // 2
    extra = int(gen.binomial(total_pairs, prob))
    attempts = 0
    while extra > 0 and attempts < 20 * total_pairs:
        a = int(gen.integers(n))
        b = int(gen.integers(n))
        attempts += 1
        if a == b:
            continue
        key = frozenset((a, b))
        if key in existing:
            continue
        existing.add(key)
        out.append((a, b))
        extra -= 1
    return out


def _connect_randomly(
    g: nx.Graph,
    members: list[int],
    gen: np.random.Generator,
    extra_prob: float,
    weight: int,
) -> None:
    """Wire ``members`` into a connected random subgraph."""
    n = len(members)
    if n == 1:
        return
    local_edges = _random_tree_edges(n, gen)
    for a, b in _with_extra_pairs(local_edges, n, extra_prob, gen):
        g.add_edge(members[a], members[b], weight=weight)
