"""Deterministic hashing of names onto the identifier ring.

Chord derives node and object identifiers with SHA-1.  We keep that
convention (the exact hash does not matter for any result in the paper;
only its uniformity does) and truncate the digest to the ring width.
"""

from __future__ import annotations

import hashlib

from repro.idspace.space import IdentifierSpace


def hash_bytes_to_id(data: bytes, space: IdentifierSpace) -> int:
    """Hash raw bytes onto ``space`` using SHA-1 truncated to the ring width."""
    digest = hashlib.sha1(data).digest()
    value = int.from_bytes(digest, "big")
    return value % space.size


def hash_to_id(name: str | int, space: IdentifierSpace) -> int:
    """Hash a string or integer name onto ``space``.

    Integers are hashed via their decimal representation so that
    ``hash_to_id(5, s)`` and ``hash_to_id("5", s)`` agree.
    """
    if isinstance(name, int):
        name = str(name)
    return hash_bytes_to_id(name.encode("utf-8"), space)
