"""Circular identifier-space arithmetic for structured P2P overlays.

This package provides the 32-bit (configurable) modular identifier ring
used by Chord, including half-open arc *regions* with wrap-around, the
center-point rule the K-nary tree uses to plant its nodes, and the
deterministic hashing helpers used to derive identifiers.
"""

from repro.idspace.space import IdentifierSpace
from repro.idspace.region import Region
from repro.idspace.intervals import IntervalSet
from repro.idspace.hashing import hash_to_id, hash_bytes_to_id

__all__ = [
    "IdentifierSpace",
    "IntervalSet",
    "Region",
    "hash_to_id",
    "hash_bytes_to_id",
]
