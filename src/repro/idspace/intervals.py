"""Sorted disjoint interval sets over the identifier circle.

The incremental balancer needs one primitive the plain :class:`Region`
does not provide efficiently: given a *batch* of dirty regions (the
identifier-space spans whose ownership changed since the last round),
answer ``does this KT node's region overlap any dirty span?`` in
``O(log s)`` instead of ``O(s)``.  :class:`IntervalSet` canonicalises
the batch once — wrapping regions are split at zero, overlapping spans
are merged — and answers overlap queries by binary search.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from repro.idspace.region import Region
from repro.idspace.space import IdentifierSpace


class IntervalSet:
    """An immutable union of half-open ``[start, end)`` identifier ranges.

    Intervals are stored unwrapped (``0 <= start < end <= space.size``);
    a region crossing zero contributes two linear pieces.  Construction
    sorts and merges, so queries see a minimal sorted disjoint list.
    """

    __slots__ = ("space", "_starts", "_ends")

    def __init__(
        self, space: IdentifierSpace, intervals: Iterable[tuple[int, int]]
    ) -> None:
        self.space = space
        merged: list[list[int]] = []
        for start, end in sorted(intervals):
            if start >= end:
                continue
            if merged and start <= merged[-1][1]:
                if end > merged[-1][1]:
                    merged[-1][1] = end
            else:
                merged.append([start, end])
        self._starts = [s for s, _ in merged]
        self._ends = [e for _, e in merged]

    @classmethod
    def from_regions(
        cls, space: IdentifierSpace, regions: Sequence[Region]
    ) -> "IntervalSet":
        """Canonicalise ``regions`` (possibly wrapping) into one set."""
        pieces: list[tuple[int, int]] = []
        for region in regions:
            start, length = region.start, region.length
            if start + length <= space.size:
                pieces.append((start, start + length))
            else:
                pieces.append((start, space.size))
                pieces.append((0, start + length - space.size))
        return cls(space, pieces)

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def _overlaps_linear(self, start: int, end: int) -> bool:
        """Overlap test against one unwrapped ``[start, end)`` range."""
        if start >= end:
            return False
        idx = bisect_right(self._starts, start)
        if idx > 0 and self._ends[idx - 1] > start:
            return True
        return idx < len(self._starts) and self._starts[idx] < end

    def contains(self, ident: int) -> bool:
        """Whether ``ident`` lies inside any interval of the set."""
        return self._overlaps_linear(ident, ident + 1)

    def overlaps_region(self, region: Region) -> bool:
        """Whether ``region`` (possibly wrapping) intersects the set."""
        if not self._starts:
            return False
        start, length = region.start, region.length
        size = self.space.size
        if start + length <= size:
            return self._overlaps_linear(start, start + length)
        return self._overlaps_linear(start, size) or self._overlaps_linear(
            0, start + length - size
        )
