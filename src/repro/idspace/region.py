"""Half-open arcs ("regions") on the identifier ring.

Both virtual servers and K-nary tree (KT) nodes are responsible for a
contiguous region of the identifier space.  A :class:`Region` is the
half-open, possibly wrapping arc ``[start, start + length)`` on a given
:class:`~repro.idspace.space.IdentifierSpace`.

Representing a region as ``(start, length)`` rather than ``(start, end)``
makes the full ring (``length == size``) and wrap-around arcs unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import RegionError
from repro.idspace.space import IdentifierSpace


@dataclass(frozen=True, slots=True)
class Region:
    """A half-open arc ``[start, start + length)`` on an identifier ring.

    Parameters
    ----------
    space:
        The identifier space the arc lives on.
    start:
        First identifier in the arc.
    length:
        Number of identifiers covered; ``1 <= length <= space.size``.
        ``length == space.size`` denotes the whole ring.
    """

    space: IdentifierSpace
    start: int
    length: int

    def __post_init__(self) -> None:
        self.space.validate(self.start)
        if not isinstance(self.length, int) or not 1 <= self.length <= self.space.size:
            raise RegionError(
                f"region length {self.length!r} out of range [1, {self.space.size}]"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, space: IdentifierSpace) -> "Region":
        """The region covering the whole ring (what the KT root owns)."""
        return cls(space, 0, space.size)

    @classmethod
    def trusted(cls, space: IdentifierSpace, start: int, length: int) -> "Region":
        """Construct without validation (bulk hot path).

        The caller guarantees ``0 <= start < space.size`` and
        ``1 <= length <= space.size`` — true by construction for arcs
        produced by the K-nary split arithmetic, which is the intended
        user: batched descent materialises thousands of child regions
        per level and the per-instance range checks are pure overhead
        there.  Anything else should go through the validating
        constructor.
        """
        region = object.__new__(cls)
        object.__setattr__(region, "space", space)
        object.__setattr__(region, "start", start)
        object.__setattr__(region, "length", length)
        return region

    @classmethod
    def from_endpoints(cls, space: IdentifierSpace, start: int, end_exclusive: int) -> "Region":
        """Build ``[start, end_exclusive)``; ``start == end`` means the full ring."""
        space.validate(start)
        space.validate(end_exclusive)
        length = space.distance_cw(start, end_exclusive)
        if length == 0:
            length = space.size
        return cls(space, start, length)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def end(self) -> int:
        """Exclusive end of the arc (wrapped onto the ring)."""
        return self.space.wrap(self.start + self.length)

    @property
    def is_full_ring(self) -> bool:
        return self.length == self.space.size

    @property
    def fraction(self) -> float:
        """Fraction ``f`` of the identifier space this region owns.

        This is the quantity the paper's load distributions are
        parameterised on (mean ``mu * f``, std ``sigma * sqrt(f)``).
        """
        return self.length / self.space.size

    def contains(self, ident: int) -> bool:
        """Whether identifier ``ident`` falls inside this region."""
        return self.space.in_arc(ident, self.start, self.length)

    def covers(self, other: "Region") -> bool:
        """Whether this region fully covers ``other``.

        This is the paper's KT-leaf rule: a KT node stops splitting when
        its region "is completely covered by that of a virtual server".
        """
        if other.space != self.space:
            raise RegionError("regions live on different identifier spaces")
        if self.is_full_ring:
            return True
        if other.is_full_ring:
            return False
        offset = self.space.distance_cw(self.start, other.start)
        return offset + other.length <= self.length

    def overlaps(self, other: "Region") -> bool:
        """Whether the two arcs share at least one identifier."""
        if other.space != self.space:
            raise RegionError("regions live on different identifier spaces")
        if self.is_full_ring or other.is_full_ring:
            return True
        return self.contains(other.start) or other.contains(self.start)

    @property
    def center(self) -> int:
        """Center point of the region — the KT planting key."""
        return self.space.midpoint(self.start, self.length)

    # ------------------------------------------------------------------
    # Partitioning (K-nary tree construction)
    # ------------------------------------------------------------------
    def split(self, k: int) -> list["Region"]:
        """Partition the region into ``k`` near-equal contiguous parts.

        The parts tile the region exactly; when ``length`` is not a
        multiple of ``k`` the remainder is distributed one identifier at a
        time to the first parts, matching the paper's "K equal parts" in
        integer arithmetic.  Raises :class:`RegionError` if the region has
        fewer than ``k`` identifiers (it can no longer be partitioned).
        """
        if not isinstance(k, int) or k < 2:
            raise RegionError(f"split degree must be an integer >= 2, got {k!r}")
        if self.length < k:
            raise RegionError(
                f"cannot split a region of length {self.length} into {k} parts"
            )
        base, extra = divmod(self.length, k)
        parts: list[Region] = []
        cursor = self.start
        for i in range(k):
            part_len = base + (1 if i < extra else 0)
            parts.append(Region(self.space, cursor, part_len))
            cursor = self.space.wrap(cursor + part_len)
        return parts

    def split_part(self, k: int, index: int) -> "Region":
        """The ``index``-th part of :meth:`split`, computed directly.

        Equivalent to ``self.split(k)[index]`` without constructing the
        other ``k - 1`` parts — the K-nary tree descends one child per
        level, so this is its hot path.
        """
        if not isinstance(k, int) or k < 2:
            raise RegionError(f"split degree must be an integer >= 2, got {k!r}")
        if self.length < k:
            raise RegionError(
                f"cannot split a region of length {self.length} into {k} parts"
            )
        if not 0 <= index < k:
            raise RegionError(f"part index {index} out of range [0, {k})")
        base, extra = divmod(self.length, k)
        if index < extra:
            offset = index * (base + 1)
            part_len = base + 1
        else:
            offset = extra * (base + 1) + (index - extra) * base
            part_len = base
        return Region(self.space, self.space.wrap(self.start + offset), part_len)

    def child_index_for(self, k: int, key: int) -> int:
        """Which of the ``k`` split parts contains ``key``.

        Raises :class:`RegionError` when ``key`` is outside this region.
        """
        if not self.contains(key):
            raise RegionError(f"key {key} not inside {self!r}")
        offset = self.space.distance_cw(self.start, key)
        base, extra = divmod(self.length, k)
        boundary = (base + 1) * extra
        if offset < boundary:
            return offset // (base + 1)
        if base == 0:  # pragma: no cover - length < k rejected upstream
            raise RegionError("region too small to split")
        return extra + (offset - boundary) // base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Region([{self.start}, +{self.length}) of 2^{self.space.bits})"
