"""The circular identifier space underlying a DHT.

A :class:`IdentifierSpace` models the ring ``Z / 2^bits`` that Chord hashes
nodes and objects onto.  All region and distance computations in the
library are expressed against an instance of this class so that tests can
exercise tiny rings (e.g. 8 identifiers) while experiments use the paper's
32-bit space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import IdentifierSpaceError


@dataclass(frozen=True, slots=True)
class IdentifierSpace:
    """A modular identifier space of size ``2**bits``.

    Parameters
    ----------
    bits:
        Width of identifiers in bits.  The paper uses 32.

    Examples
    --------
    >>> space = IdentifierSpace(bits=4)
    >>> space.size
    16
    >>> space.distance_cw(14, 2)
    4
    """

    bits: int = 32

    def __post_init__(self) -> None:
        if not isinstance(self.bits, int) or self.bits < 1:
            raise IdentifierSpaceError(f"bits must be a positive integer, got {self.bits!r}")
        if self.bits > 256:
            raise IdentifierSpaceError(f"bits={self.bits} is unreasonably large (max 256)")

    @property
    def size(self) -> int:
        """Number of identifiers on the ring (``2**bits``)."""
        return 1 << self.bits

    @property
    def max_id(self) -> int:
        """Largest valid identifier (``2**bits - 1``)."""
        return (1 << self.bits) - 1

    def contains(self, ident: int) -> bool:
        """Return whether ``ident`` is a valid identifier on this ring."""
        return isinstance(ident, int) and 0 <= ident < self.size

    def validate(self, ident: int) -> int:
        """Return ``ident`` unchanged, raising if it is out of range."""
        if not self.contains(ident):
            raise IdentifierSpaceError(
                f"identifier {ident!r} out of range for a {self.bits}-bit space"
            )
        return ident

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary integer onto the ring."""
        return value % self.size

    def distance_cw(self, start: int, end: int) -> int:
        """Clockwise (increasing-id) distance from ``start`` to ``end``.

        ``distance_cw(a, a) == 0``; the result is in ``[0, size)``.
        """
        self.validate(start)
        self.validate(end)
        return (end - start) % self.size

    def distance(self, a: int, b: int) -> int:
        """Shortest circular distance between two identifiers."""
        d = self.distance_cw(a, b)
        return min(d, self.size - d)

    def in_arc(self, ident: int, start: int, length: int) -> bool:
        """Return whether ``ident`` lies in the half-open arc ``[start, start+length)``.

        ``length`` may be 0 (empty arc) up to ``size`` (the whole ring).
        """
        self.validate(ident)
        self.validate(start)
        if not 0 <= length <= self.size:
            raise IdentifierSpaceError(f"arc length {length} out of range [0, {self.size}]")
        if length == 0:
            return False
        if length == self.size:
            return True
        return self.distance_cw(start, ident) < length

    def midpoint(self, start: int, length: int) -> int:
        """Center point of the arc ``[start, start+length)``.

        This is the rule the paper uses to derive the DHT key at which a
        K-nary tree node is planted: "taking the center point of its
        responsible region".
        """
        self.validate(start)
        if not 1 <= length <= self.size:
            raise IdentifierSpaceError(f"arc length {length} out of range [1, {self.size}]")
        return self.wrap(start + length // 2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IdentifierSpace(bits={self.bits})"
