"""Multi-round convergence under heavy-tailed loads, with VS splitting.

Under the Pareto load model a single virtual server can carry more load
than *any* light node's spare capacity.  Whole-virtual-server transfer
(the paper's mechanism) can never move it: the residual heavy node
persists across arbitrarily many balancing rounds.  The splitting
extension (:mod:`repro.dht.split` — flagged as the natural remedy by
Rao et al. and the paper's future work) breaks such giants into pieces
sized against the advertised spare-capacity distribution, after which
one more round fully balances the system.

This experiment runs both variants side by side and reports the heavy
population and stranded excess per round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport
from repro.dht.chord import ChordRing
from repro.dht.split import split_until_movable
from repro.experiments.common import ExperimentSettings
from repro.workloads.loads import ParetoLoadModel
from repro.workloads.scenario import build_scenario


@dataclass(frozen=True)
class ConvergenceResult:
    settings: ExperimentSettings
    heavy_per_round_plain: list[int]
    heavy_per_round_split: list[int]
    stranded_per_round_plain: list[float]
    stranded_per_round_split: list[float]
    splits_performed: int

    def format_rows(self) -> str:
        lines = [
            "Convergence under Pareto loads, with/without VS splitting "
            f"(epsilon={self.settings.epsilon})",
            f"  {'round':>6} {'heavy plain':>12} {'heavy split':>12} "
            f"{'stranded plain':>15} {'stranded split':>15}",
        ]
        rounds = max(len(self.heavy_per_round_plain), len(self.heavy_per_round_split))

        def at(seq: list[int] | list[float], i: int) -> int | float:
            return seq[i] if i < len(seq) else seq[-1]

        for i in range(rounds):
            lines.append(
                f"  {i:>6} {at(self.heavy_per_round_plain, i):>12} "
                f"{at(self.heavy_per_round_split, i):>12} "
                f"{at(self.stranded_per_round_plain, i):>15.4g} "
                f"{at(self.stranded_per_round_split, i):>15.4g}"
            )
        lines.append(
            f"  splits performed: {self.splits_performed}  "
            "[whole-VS transfer cannot move a giant; splitting resolves it]"
        )
        return "\n".join(lines)


def _split_unmovable(ring: ChordRing, report: BalanceReport) -> int:
    """Split unassigned giants against the spare-capacity distribution.

    Pieces are sized at the *median* advertised spare so several lights
    can absorb them next round (sizing at the maximum would only chase
    the single biggest light).
    """
    deltas = sorted((s.delta for s in report.vsa.unassigned_light), reverse=True)
    if not deltas:
        return 0
    target = float(np.median(deltas)) if len(deltas) > 3 else deltas[-1]
    target = max(target, 1e-9)
    splits = 0
    for cand in report.vsa.unassigned_heavy:
        if cand.load > deltas[0]:
            pieces = split_until_movable(
                ring, cand.vs_id, max_piece_load=target, max_splits=64
            )
            splits += len(pieces) - 1
    return splits


def _run_rounds(
    settings: ExperimentSettings, use_splitting: bool, rounds: int
) -> tuple[list[int], list[float], int]:
    scenario = build_scenario(
        ParetoLoadModel(mu=settings.mu),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(proximity_mode="ignorant", epsilon=settings.epsilon),
        rng=settings.balancer_seed,
    )
    heavy_hist: list[int] = []
    stranded_hist: list[float] = []
    splits = 0
    for _ in range(rounds):
        report = balancer.run_round()
        heavy_hist.append(report.heavy_after)
        stranded_hist.append(report.vsa.unassigned_load)
        if report.heavy_after == 0:
            break
        if use_splitting:
            splits += _split_unmovable(scenario.ring, report)
    return heavy_hist, stranded_hist, splits


def run(
    settings: ExperimentSettings | None = None, rounds: int = 5
) -> ConvergenceResult:
    """Run the convergence experiment (plain vs splitting-enabled)."""
    s = settings if settings is not None else ExperimentSettings.from_env()
    plain_h, plain_s, _ = _run_rounds(s, use_splitting=False, rounds=rounds)
    split_h, split_s, n_splits = _run_rounds(s, use_splitting=True, rounds=rounds)
    return ConvergenceResult(
        settings=s,
        heavy_per_round_plain=plain_h,
        heavy_per_round_split=split_h,
        stranded_per_round_plain=plain_s,
        stranded_per_round_split=split_s,
        splits_performed=n_splits,
    )
