"""Figure 4: unit load per node before/after balancing (Gaussian loads).

Paper setup: 4096-node Chord, 5 virtual servers each, Gaussian loads,
K=2 tree.  Expected outcome: ~75% of nodes heavy before balancing; zero
heavy after (all excess load moved to lights).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.figures import Figure4Data, figure4_data
from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport
from repro.experiments.common import ExperimentSettings, pct
from repro.workloads.loads import GaussianLoadModel
from repro.workloads.scenario import build_scenario


@dataclass(frozen=True)
class Fig4Result:
    settings: ExperimentSettings
    data: Figure4Data
    report: BalanceReport

    def format_rows(self) -> str:
        d = self.data
        lines = [
            "Figure 4 - unit load before/after load balancing (Gaussian)",
            f"  nodes={len(d.node_ids)}  heavy before: {d.heavy_before} "
            f"({pct(d.heavy_fraction_before)})  [paper: ~75%]",
            f"  heavy after: {d.heavy_after}  [paper: 0]",
            f"  unit load before: max={d.unit_before.max():.1f} "
            f"mean={d.unit_before.mean():.2f} (fair ratio L/C={d.target_unit:.2f})",
            f"  unit load after:  max={d.unit_after.max():.2f} "
            f"mean={d.unit_after.mean():.2f}",
        ]
        return "\n".join(lines)


def run(settings: ExperimentSettings | None = None) -> Fig4Result:
    """Run the figure-4 experiment (identifier-space only, no topology)."""
    s = settings if settings is not None else ExperimentSettings.from_env()
    scenario = build_scenario(
        GaussianLoadModel(mu=s.mu, sigma=s.sigma),
        num_nodes=s.num_nodes,
        vs_per_node=s.vs_per_node,
        rng=s.seed,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant",
            epsilon=s.epsilon,
            tree_degree=s.tree_degree,
        ),
        rng=s.balancer_seed,
    )
    report = balancer.run_round()
    return Fig4Result(settings=s, data=figure4_data(report), report=report)
