"""Figure 6: load by capacity category, Pareto distribution.

Same alignment experiment as figure 5 but with the heavy-tailed Pareto
load model (shape 1.5, infinite variance).  A handful of extreme virtual
servers may exceed every light node's spare capacity and remain in
place — matching the paper's observation that balance quality degrades
only gracefully under Pareto.
"""

from __future__ import annotations

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.analysis.figures import figure56_data
from repro.experiments.common import ExperimentSettings
from repro.experiments.fig5 import Fig56Result
from repro.workloads.loads import ParetoLoadModel
from repro.workloads.scenario import build_scenario


def run(settings: ExperimentSettings | None = None) -> Fig56Result:
    """Run the figure-6 experiment (Pareto loads, capacity alignment)."""
    s = settings if settings is not None else ExperimentSettings.from_env()
    scenario = build_scenario(
        ParetoLoadModel(mu=s.mu),
        num_nodes=s.num_nodes,
        vs_per_node=s.vs_per_node,
        rng=s.seed,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant",
            epsilon=s.epsilon,
            tree_degree=s.tree_degree,
        ),
        rng=s.balancer_seed,
    )
    report = balancer.run_round()
    return Fig56Result(
        settings=s, data=figure56_data(report, "pareto"), report=report
    )
