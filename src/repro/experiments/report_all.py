"""Run every registered experiment and emit one markdown report.

Powers ``repro-p2plb report``: the whole evaluation section regenerated
into a single document with the settings stamped at the top — the
reproducibility artifact a reviewer would ask for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.common import ExperimentSettings
from repro.experiments.registry import EXPERIMENTS


@dataclass(frozen=True)
class FullReport:
    settings: ExperimentSettings
    sections: list[tuple[str, str, float]]  # (experiment id, body, seconds)
    total_seconds: float

    def to_markdown(self) -> str:
        s = self.settings
        lines = [
            "# Reproduction report",
            "",
            "Zhu & Hu, *Towards Efficient Load Balancing in Structured P2P "
            "Systems* (2004) — regenerated evaluation.",
            "",
            f"- nodes: {s.num_nodes} x {s.vs_per_node} virtual servers",
            f"- epsilon: {s.epsilon}, tree degree K={s.tree_degree}, "
            f"grid bits: {s.grid_bits}",
            f"- seed: {s.seed} (balancer seed {s.balancer_seed})",
            f"- total runtime: {self.total_seconds:.1f}s",
            "",
        ]
        for exp_id, body, seconds in self.sections:
            lines.append(f"## {exp_id}  ({seconds:.1f}s)")
            lines.append("")
            lines.append("```")
            lines.append(body)
            lines.append("```")
            lines.append("")
        return "\n".join(lines)


def run_all(
    settings: ExperimentSettings | None = None,
    include: list[str] | None = None,
) -> FullReport:
    """Run every (or the selected) experiment and collect its table."""
    s = settings if settings is not None else ExperimentSettings.from_env()
    names = sorted(EXPERIMENTS) if include is None else include
    sections: list[tuple[str, str, float]] = []
    t_total = time.perf_counter()
    for name in names:
        runner, _ = EXPERIMENTS[name]
        t0 = time.perf_counter()
        result = runner(s)
        sections.append((name, result.format_rows(), time.perf_counter() - t0))
    return FullReport(
        settings=s,
        sections=sections,
        total_seconds=time.perf_counter() - t_total,
    )
