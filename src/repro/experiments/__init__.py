"""Experiment drivers: one module per paper figure/claim.

Each module exposes ``run(...)`` returning a typed result with a
``format_rows()`` text table; the benchmark harness and the CLI are thin
wrappers over these.  ``registry`` maps experiment ids (``fig4`` ...
``timing``) to their drivers.
"""

from repro.experiments.common import ExperimentSettings
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "ExperimentSettings",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
]
