"""Chaos sweep: injected fault rate vs achieved load movement.

Each sweep point runs one balancing round over the *same* Gaussian
scenario under a :class:`~repro.faults.FaultPlan` with an increasing
message-drop probability (plus a fixed mid-round crash budget and
per-transfer abort probability), and compares the load the degraded
round actually moved against the fault-free baseline round.  The
interesting output is graceful degradation: the movement ratio should
fall smoothly with the drop rate — never a hang, never a conservation
violation — while the recovery counters (retries, stale-LBI reuse,
rollbacks) show the machinery that absorbed the faults.

``python -m repro.experiments.chaos --smoke`` runs the acceptance
scenario from the fault-injection work (small ring, fixed seed, 10%
drop, one mid-round crash) and asserts conservation, convergence and
fault-sequence reproducibility; ``scripts/verify.sh`` wires it in as
the chaos smoke stage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport, check_conservation
from repro.experiments.common import ExperimentSettings, pct
from repro.faults import FaultPlan
from repro.parallel.trials import TrialExecutor
from repro.workloads.loads import GaussianLoadModel
from repro.workloads.scenario import build_scenario

#: Drop probabilities swept by default (0.0 still injects the crash and
#: abort channels, so the first row shows their cost in isolation).
DEFAULT_DROP_RATES: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class ChaosRow:
    """One sweep point: the fault knobs and what the round salvaged."""

    drop: float
    transfers: int
    failed_transfers: int
    moved_load: float
    movement_ratio: float  # moved load / fault-free baseline moved load
    heavy_after: int
    retries: int
    lost: int
    rollbacks: int
    crashed_nodes: int
    stale_lbi_reused: bool
    signature: str


@dataclass(frozen=True)
class ChaosResult:
    settings: ExperimentSettings
    crash_mid_round: int
    transfer_abort: float
    baseline_moved: float
    baseline_heavy_after: int
    rows: list[ChaosRow]

    def format_rows(self) -> str:
        lines = [
            "Chaos sweep - drop rate vs achieved load movement "
            f"(crashes/round={self.crash_mid_round}, "
            f"transfer_abort={self.transfer_abort})",
            f"  fault-free baseline: moved={self.baseline_moved:.4g} "
            f"heavy_after={self.baseline_heavy_after}",
            f"  {'drop':>6} {'moved%':>7} {'xfers':>6} {'failed':>7} "
            f"{'retries':>8} {'lost':>5} {'rollbk':>7} {'crash':>6} "
            f"{'stale':>6} {'heavy':>6}",
        ]
        for r in self.rows:
            lines.append(
                f"  {r.drop:>6.2f} {pct(r.movement_ratio):>7} "
                f"{r.transfers:>6} {r.failed_transfers:>7} "
                f"{r.retries:>8} {r.lost:>5} {r.rollbacks:>7} "
                f"{r.crashed_nodes:>6} {str(r.stale_lbi_reused):>6} "
                f"{r.heavy_after:>6}"
            )
        lines.append(
            "  [movement ratio should fall smoothly with the drop rate; "
            "every row conserved load]"
        )
        return "\n".join(lines)


def _run_round(
    settings: ExperimentSettings, faults: FaultPlan | None
) -> BalanceReport:
    """One balancing round over the shared scenario, conservation-checked."""
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant",
            epsilon=settings.epsilon,
            tree_degree=settings.tree_degree,
        ),
        rng=settings.balancer_seed,
        faults=faults,
    )
    report = balancer.run_round()
    check_conservation(report)
    return report


def chaos_row(
    settings: ExperimentSettings,
    drop_rates: tuple[float, ...],
    crash_mid_round: int,
    transfer_abort: float,
    fault_seed: int,
    baseline_moved: float,
    rate_index: int,
) -> ChaosRow:
    """One sweep point: run the round at ``drop_rates[rate_index]``.

    Module-level and keyed by an integer index (not the float rate) so
    the parallel trial engine can ship it to workers via
    :func:`functools.partial`; a pure function of its arguments either
    way, so serial and parallel sweeps produce identical rows.
    """
    rate = drop_rates[rate_index]
    plan = FaultPlan(
        seed=fault_seed,
        drop=rate,
        crash_mid_round=crash_mid_round,
        transfer_abort=transfer_abort,
    )
    report = _run_round(settings, faults=plan)
    fs = report.fault_stats
    ratio = report.moved_load / baseline_moved if baseline_moved > 0 else 0.0
    return ChaosRow(
        drop=rate,
        transfers=len(report.transfers),
        failed_transfers=len(report.failed_assignments),
        moved_load=report.moved_load,
        movement_ratio=ratio,
        heavy_after=report.heavy_after,
        retries=fs.total_retries,
        lost=fs.total_lost,
        rollbacks=fs.vst_rollbacks,
        crashed_nodes=len(fs.crashed_nodes),
        stale_lbi_reused=fs.stale_lbi_reused,
        signature=fs.signature,
    )


def run(
    settings: ExperimentSettings | None = None,
    drop_rates: tuple[float, ...] = DEFAULT_DROP_RATES,
    crash_mid_round: int = 1,
    transfer_abort: float = 0.05,
    fault_seed: int | None = None,
) -> ChaosResult:
    """Sweep message-drop rates against one fixed scenario.

    The scenario seed is held constant across the sweep so every row
    faces the identical initial load distribution; only the fault plan
    changes.  ``fault_seed`` defaults to the scenario seed, keeping the
    whole sweep a pure function of the settings.  With
    ``settings.workers > 1`` the sweep points run in parallel through
    :class:`repro.parallel.TrialExecutor` (each point rebuilds its own
    scenario, so points share nothing and rows come out identical to a
    serial sweep's).
    """
    s = settings if settings is not None else ExperimentSettings.from_env()
    fseed = fault_seed if fault_seed is not None else s.seed
    baseline = _run_round(s, faults=None)

    row_fn = partial(
        chaos_row, s, drop_rates, crash_mid_round, transfer_abort, fseed,
        baseline.moved_load,
    )
    indices = range(len(drop_rates))
    if s.workers > 1:
        with TrialExecutor(workers=s.workers) as executor:
            rows = list(executor.map(row_fn, indices))
    else:
        rows = [row_fn(index) for index in indices]
    return ChaosResult(
        settings=s,
        crash_mid_round=crash_mid_round,
        transfer_abort=transfer_abort,
        baseline_moved=baseline.moved_load,
        baseline_heavy_after=baseline.heavy_after,
        rows=rows,
    )


# ----------------------------------------------------------------------
# Smoke mode (the verify.sh chaos stage)
# ----------------------------------------------------------------------
def smoke(num_nodes: int = 64, seed: int = 7) -> str:
    """The acceptance scenario: degraded round must survive, reproducibly.

    Runs a full :class:`~repro.app.system.P2PSystem` rebalance on a
    small ring under ``FaultPlan(drop=0.1, crash_mid_round=1)`` twice
    with identical seeds and asserts:

    * the round completes without raising and conserves load;
    * the round still converges (heavy population strictly falls);
    * the recovery machinery actually engaged (faults were injected);
    * both runs injected the byte-identical fault sequence and reached
      the byte-identical final loads.

    Returns a one-line summary for the verify log; raises
    ``AssertionError`` on any violation.
    """
    from repro.app.system import P2PSystem, SystemConfig

    plan = FaultPlan(seed=3, drop=0.1, crash_mid_round=1, transfer_abort=0.1)

    def one_run() -> tuple[BalanceReport, str, list[float]]:
        system = P2PSystem(
            SystemConfig(initial_nodes=num_nodes, seed=seed), faults=plan
        )
        for i in range(6 * num_nodes):
            system.put(f"obj-{i}", load=float(1 + (i * 7919) % 97))
        report = system.rebalance()
        check_conservation(report)
        system.verify()
        loads = sorted(
            float(vs.load)
            for node in system.ring.alive_nodes
            for vs in node.virtual_servers
        )
        return report, report.fault_stats.signature, loads

    first, sig1, loads1 = one_run()
    second, sig2, loads2 = one_run()

    assert first.fault_stats.injected_total > 0, "no faults injected"
    assert first.heavy_after < first.heavy_before, (
        f"degraded round did not converge: heavy "
        f"{first.heavy_before} -> {first.heavy_after}"
    )
    assert sig1 == sig2, f"fault sequences diverged: {sig1} != {sig2}"
    assert loads1 == loads2, "final loads diverged across identical runs"
    assert second.fault_stats.injected_total == first.fault_stats.injected_total

    fs = first.fault_stats
    return (
        f"chaos smoke OK: nodes={num_nodes} heavy {first.heavy_before}->"
        f"{first.heavy_after} injected={fs.injected_total} "
        f"retries={fs.total_retries} rollbacks={fs.vst_rollbacks} "
        f"crashed={fs.crashed_nodes} signature={sig1[:12]} (reproduced)"
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.chaos [--smoke]`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.experiments.chaos",
        description="fault-rate sweep / chaos smoke for the load balancer",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small fixed-seed acceptance scenario and assert "
        "conservation, convergence and reproducibility",
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweep (default: serial)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        print(
            smoke(
                num_nodes=args.nodes if args.nodes is not None else 64,
                seed=args.seed if args.seed is not None else 7,
            )
        )
        return 0

    settings = ExperimentSettings.from_env()
    if args.nodes is not None:
        settings = replace(settings, num_nodes=args.nodes)
    if args.seed is not None:
        settings = replace(settings, seed=args.seed)
    if args.workers is not None:
        settings = replace(settings, workers=args.workers)
    print(run(settings).format_rows())
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
