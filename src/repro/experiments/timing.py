"""The ``O(log_K N)`` timing claim, for K = 2 and K = 8.

The paper states that LBI aggregation, dissemination and VSA each
complete in ``O(log_K N)`` time and reports that "VSA completes quickly
in O(log_K N) time" for both tree degrees.  This experiment measures
the actual rounds across a size sweep and checks that rounds scale with
``log(#virtual servers)`` (constant ``height / log_K(#VS)`` ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentSettings
from repro.sim.runner import PhaseTimings, sweep_phase_rounds


@dataclass(frozen=True)
class TimingResult:
    settings: ExperimentSettings
    timings: list[PhaseTimings]

    def format_rows(self) -> str:
        lines = [
            "Timing claim - phase rounds vs O(log_K #VS)",
            f"  {'K':>3} {'nodes':>6} {'#VS':>7} {'height':>7} {'agg':>5} "
            f"{'dissem':>7} {'vsa':>5} {'h/log':>6}",
        ]
        for t in self.timings:
            lines.append(
                f"  {t.tree_degree:>3} {t.num_nodes:>6} {t.num_virtual_servers:>7} "
                f"{t.tree_height:>7} {t.aggregation_rounds:>5} "
                f"{t.dissemination_rounds:>7} {t.vsa_rounds:>5} "
                f"{t.height_per_log:>6.2f}"
            )
        lines.append("  [paper: all phases bounded by O(log_K N) rounds]")
        return "\n".join(lines)


def run(
    settings: ExperimentSettings | None = None,
    sizes: list[int] | None = None,
    tree_degrees: tuple[int, ...] = (2, 8),
) -> TimingResult:
    """Measure phase rounds across a size sweep for both tree degrees."""
    s = settings if settings is not None else ExperimentSettings.from_env()
    if sizes is None:
        top = s.num_nodes
        sizes = sorted({max(64, top // 8), max(128, top // 4), max(256, top // 2), top})
    timings = sweep_phase_rounds(
        sizes, tree_degrees=list(tree_degrees), vs_per_node=s.vs_per_node, rng=s.seed
    )
    return TimingResult(settings=s, timings=timings)
