"""Seed-variance study of the figure-7 headline numbers.

Runs the ts5k-large proximity experiment across several seeds (fresh
topology, capacities, loads, and landmark choices each time) and puts
error bars on the within-distance fractions — the reproduction's
equivalent of the paper's "10 graphs each ... we ran all these graphs".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.replicate import ReplicatedMetric, replicate
from repro.experiments.common import ExperimentSettings
from repro.experiments.fig7 import run as run_fig7


@dataclass(frozen=True)
class VarianceResult:
    settings: ExperimentSettings
    seeds: tuple[int, ...]
    metrics: dict[str, ReplicatedMetric]

    def format_rows(self) -> str:
        lines = [
            f"Seed variance of figure 7 ({len(self.seeds)} replications)",
            f"  {'metric':>24} {'mean':>9} {'std':>8} {'min':>8} {'max':>8}",
        ]
        for name, m in self.metrics.items():
            lines.append(
                f"  {name:>24} {m.mean:>9.3f} {m.std:>8.3f} "
                f"{m.minimum:>8.3f} {m.maximum:>8.3f}"
            )
        lines.append(
            "  [paper ran 10 GT-ITM graphs per topology; this is the analogous sweep]"
        )
        return "\n".join(lines)


def run(
    settings: ExperimentSettings | None = None,
    num_seeds: int = 5,
) -> VarianceResult:
    """Replicate figure 7 across ``num_seeds`` fresh scenario draws."""
    s = settings if settings is not None else ExperimentSettings.from_env()
    seeds = tuple(s.seed + 1000 * i for i in range(num_seeds))

    def metrics_for(seed: int) -> dict[str, float]:
        result = run_fig7(replace(s, seed=seed))
        d = result.data
        return {
            "aware_within_2": d.aware_within[2],
            "aware_within_10": d.aware_within[10],
            "ignorant_within_10": d.ignorant_within[10],
            "aware_mean_distance": float(
                result.aware_report.transfer_distances.mean()
            ),
            "ignorant_mean_distance": float(
                result.ignorant_report.transfer_distances.mean()
            ),
        }

    return VarianceResult(
        settings=s, seeds=seeds, metrics=replicate(metrics_for, seeds)
    )
