"""Seed-variance study of the figure-7 headline numbers.

Runs the ts5k-large proximity experiment across several seeds (fresh
topology, capacities, loads, and landmark choices each time) and puts
error bars on the within-distance fractions — the reproduction's
equivalent of the paper's "10 graphs each ... we ran all these graphs".

With ``settings.workers > 1`` the per-seed replications fan out across
worker processes through :class:`repro.parallel.TrialExecutor`; each
replication is a pure function of its seed, so the parallel sweep's
rows — and therefore the summarised :class:`VarianceResult` — are
byte-identical to the serial sweep's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

from repro.analysis.replicate import ReplicatedMetric, replicate, summarize_rows
from repro.experiments.common import ExperimentSettings
from repro.experiments.fig7 import run as run_fig7
from repro.parallel.trials import TrialExecutor


@dataclass(frozen=True)
class VarianceResult:
    """Per-metric spread of the figure-7 numbers across seed sweeps."""

    settings: ExperimentSettings
    seeds: tuple[int, ...]
    metrics: dict[str, ReplicatedMetric]

    def format_rows(self) -> str:
        """Aligned text table of mean/std/min/max per metric."""
        lines = [
            f"Seed variance of figure 7 ({len(self.seeds)} replications)",
            f"  {'metric':>24} {'mean':>9} {'std':>8} {'min':>8} {'max':>8}",
        ]
        for name, m in self.metrics.items():
            lines.append(
                f"  {name:>24} {m.mean:>9.3f} {m.std:>8.3f} "
                f"{m.minimum:>8.3f} {m.maximum:>8.3f}"
            )
        lines.append(
            "  [paper ran 10 GT-ITM graphs per topology; this is the analogous sweep]"
        )
        return "\n".join(lines)


def fig7_metrics(settings: ExperimentSettings, seed: int) -> dict[str, float]:
    """One replication: figure 7 under ``seed``, headline metrics only.

    Module-level (rather than a closure) so :func:`functools.partial`
    over picklable ``settings`` can ship it to trial workers.
    """
    result = run_fig7(replace(settings, seed=seed))
    d = result.data
    return {
        "aware_within_2": d.aware_within[2],
        "aware_within_10": d.aware_within[10],
        "ignorant_within_10": d.ignorant_within[10],
        "aware_mean_distance": float(
            result.aware_report.transfer_distances.mean()
        ),
        "ignorant_mean_distance": float(
            result.ignorant_report.transfer_distances.mean()
        ),
    }


def run(
    settings: ExperimentSettings | None = None,
    num_seeds: int = 5,
) -> VarianceResult:
    """Replicate figure 7 across ``num_seeds`` fresh scenario draws.

    ``settings.workers > 1`` runs the replications through the parallel
    trial engine; the historical serial loop is kept verbatim for
    ``workers == 1``.
    """
    s = settings if settings is not None else ExperimentSettings.from_env()
    seeds = tuple(s.seed + 1000 * i for i in range(num_seeds))
    metric_fn = partial(fig7_metrics, s)
    if s.workers > 1:
        with TrialExecutor(workers=s.workers) as executor:
            rows = executor.map(metric_fn, seeds)
        metrics = summarize_rows(rows)
    else:
        metrics = replicate(metric_fn, seeds)
    return VarianceResult(settings=s, seeds=seeds, metrics=metrics)
