"""Partition tolerance: degraded rounds, healing, and the books balancing.

Each sweep point runs several consecutive balancing rounds over the
*same* Gaussian scenario under a :class:`~repro.faults.FaultPlan` that
severs the ring into components for a window of rounds
(:class:`~repro.faults.PartitionSpec`), optionally cutting mid-round so
in-flight transfers are caught on the wire.  The interesting outputs
are the robustness invariants, not throughput:

* every degraded round balances per *component* and still conserves
  load globally (in-flight load is carried on both sides of the books);
* the heal reconciles every suspended transfer — committed when both
  endpoints survived, rolled back otherwise — and the post-heal epoch
  carries no partition-era state;
* the whole history (epochs, suspensions, heal outcomes, final loads)
  is a pure function of ``(scenario seed, fault plan)``.

``python -m repro.experiments.partition --smoke`` runs the acceptance
scenario (small ring, fixed seed, mid-round 2-way split healing two
rounds later) and asserts all of the above; ``--corrupt-heal`` flips a
test hook that drops one suspended transfer during reconciliation, so
the conservation guard must abort the run with a non-zero exit — the
negative control proving the defense is live.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport, check_conservation
from repro.experiments.common import ExperimentSettings
from repro.faults import FaultPlan, PartitionSpec
from repro.parallel.trials import TrialExecutor
from repro.workloads.loads import GaussianLoadModel
from repro.workloads.scenario import build_scenario

#: Component counts swept by default: the ring is cut into this many
#: pieces mid-round, held apart for two rounds, then healed.
DEFAULT_COMPONENT_COUNTS: tuple[int, ...] = (2, 3, 4)

#: Rounds each sweep point runs: pre-partition round, the partition
#: window, the heal round and one clean round after.
ROUNDS_PER_POINT = 5


@dataclass(frozen=True)
class PartitionRow:
    """One sweep point: the split shape and how the system rode it out."""

    num_components: int
    partitioned_rounds: int
    final_epoch: int
    suspended: int
    healed_commits: int
    healed_rollbacks: int
    regrafts: int
    quarantined: int
    transfers: int
    moved_load: float
    heavy_start: int
    heavy_end: int
    signature: str
    final_digest: str


@dataclass(frozen=True)
class PartitionResult:
    settings: ExperimentSettings
    duration: int
    drop: float
    corrupt: float
    rows: list[PartitionRow]

    def format_rows(self) -> str:
        lines = [
            "Partition sweep - component count vs heal outcome "
            f"(duration={self.duration} rounds, drop={self.drop}, "
            f"corrupt={self.corrupt})",
            f"  {'comps':>6} {'degr':>5} {'epoch':>6} {'susp':>5} "
            f"{'commit':>7} {'rollbk':>7} {'regraft':>8} {'quar':>5} "
            f"{'xfers':>6} {'heavy':>11}",
        ]
        for r in self.rows:
            lines.append(
                f"  {r.num_components:>6} {r.partitioned_rounds:>5} "
                f"{r.final_epoch:>6} {r.suspended:>5} "
                f"{r.healed_commits:>7} {r.healed_rollbacks:>7} "
                f"{r.regrafts:>8} {r.quarantined:>5} {r.transfers:>6} "
                f"{r.heavy_start:>4} -> {r.heavy_end:>4}"
            )
        lines.append(
            "  [every row conserved load globally through partition and "
            "heal; suspended == commit + rollback]"
        )
        return "\n".join(lines)


def _build_balancer(
    settings: ExperimentSettings, plan: FaultPlan | None
) -> LoadBalancer:
    """The shared scenario + balancer for one sweep point."""
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )
    return LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant",
            epsilon=settings.epsilon,
            tree_degree=settings.tree_degree,
        ),
        rng=settings.balancer_seed,
        faults=plan,
    )


def _run_rounds(
    balancer: LoadBalancer, rounds: int
) -> list[BalanceReport]:
    """Run consecutive rounds, conservation-checking every one."""
    reports = []
    for _ in range(rounds):
        report = balancer.run_round()
        check_conservation(report)
        reports.append(report)
    return reports


def partition_row(
    settings: ExperimentSettings,
    component_counts: tuple[int, ...],
    duration: int,
    drop: float,
    corrupt: float,
    fault_seed: int,
    count_index: int,
) -> PartitionRow:
    """One sweep point: partition into ``component_counts[count_index]``.

    Module-level and keyed by an integer index so the parallel trial
    engine can ship it to workers via :func:`functools.partial`; a pure
    function of its arguments either way, so serial and parallel sweeps
    produce identical rows.
    """
    num_components = component_counts[count_index]
    plan = FaultPlan(
        seed=fault_seed,
        drop=drop,
        corrupt=corrupt,
        partitions=(
            PartitionSpec(
                at_round=1,
                duration=duration,
                num_components=num_components,
                mid_round=True,
            ),
        ),
    )
    balancer = _build_balancer(settings, plan)
    reports = _run_rounds(balancer, ROUNDS_PER_POINT)
    fs = [r.fault_stats for r in reports]
    return PartitionRow(
        num_components=num_components,
        partitioned_rounds=sum(1 for s in fs if s.partition_components > 1),
        final_epoch=fs[-1].epoch,
        suspended=sum(s.suspended_transfers for s in fs),
        healed_commits=sum(s.healed_commits for s in fs),
        healed_rollbacks=sum(s.healed_rollbacks for s in fs),
        regrafts=sum(s.regrafts for s in fs),
        quarantined=sum(len(s.quarantined_nodes) for s in fs),
        transfers=sum(len(r.transfers) for r in reports),
        moved_load=sum(r.moved_load for r in reports),
        heavy_start=reports[0].heavy_before,
        heavy_end=reports[-1].heavy_after,
        signature=fs[-1].signature,
        final_digest=reports[-1].canonical_digest(),
    )


def run(
    settings: ExperimentSettings | None = None,
    component_counts: tuple[int, ...] = DEFAULT_COMPONENT_COUNTS,
    duration: int = 2,
    drop: float = 0.05,
    corrupt: float = 0.0,
    fault_seed: int | None = None,
) -> PartitionResult:
    """Sweep partition component counts against one fixed scenario.

    The scenario seed is held constant across the sweep so every row
    faces the identical initial load distribution; only the partition
    shape changes.  ``fault_seed`` defaults to the scenario seed,
    keeping the whole sweep a pure function of the settings.  With
    ``settings.workers > 1`` the sweep points run in parallel through
    :class:`repro.parallel.TrialExecutor` (each point rebuilds its own
    scenario, so rows come out identical to a serial sweep's).
    """
    s = settings if settings is not None else ExperimentSettings.from_env()
    fseed = fault_seed if fault_seed is not None else s.seed

    row_fn = partial(
        partition_row, s, component_counts, duration, drop, corrupt, fseed
    )
    indices = range(len(component_counts))
    if s.workers > 1:
        with TrialExecutor(workers=s.workers) as executor:
            rows = list(executor.map(row_fn, indices))
    else:
        rows = [row_fn(index) for index in indices]
    return PartitionResult(
        settings=s, duration=duration, drop=drop, corrupt=corrupt, rows=rows
    )


# ----------------------------------------------------------------------
# Smoke mode (the verify.sh partition stage)
# ----------------------------------------------------------------------
def smoke(
    num_nodes: int = 64, seed: int = 7, corrupt_heal: bool = False
) -> str:
    """The acceptance scenario: partition, degrade, heal, balance books.

    Runs five rounds on a small ring under a plan that severs the ring
    into two components *mid-round* at round 1 (so a transfer can be
    caught in flight), heals at round 3, and drops 5% of protocol
    messages throughout.  Asserts:

    * degraded (per-component) rounds actually happened and every round
      conserved load globally, in-flight transfers included;
    * the heal reconciled exactly the suspended transfers
      (``suspended == commits + rollbacks``) and bumped the epoch twice
      (partitioned view, then reunified view);
    * a repeat run with identical seeds reproduces the byte-identical
      fault signature and per-round canonical digests.

    With ``corrupt_heal=True`` the membership manager's test hook drops
    one suspended transfer during reconciliation; the heal's
    conservation guard must then raise
    :class:`~repro.exceptions.ConservationError`, which this function
    deliberately does not catch — the caller (the CLI smoke stage)
    must exit non-zero.

    Returns a one-line summary for the verify log; raises
    ``AssertionError`` on any violation.
    """
    settings = ExperimentSettings(num_nodes=num_nodes, seed=seed)
    plan = FaultPlan(
        seed=3,
        drop=0.05,
        partitions=(
            PartitionSpec(
                at_round=1, duration=2, num_components=2, mid_round=True
            ),
        ),
    )

    def one_run() -> tuple[list[BalanceReport], str, list[str]]:
        balancer = _build_balancer(settings, plan)
        if corrupt_heal:
            assert balancer.membership is not None
            balancer.membership.corrupt_heal = True
        reports = _run_rounds(balancer, ROUNDS_PER_POINT)
        digests = [r.canonical_digest() for r in reports]
        return reports, reports[-1].fault_stats.signature, digests

    first, sig1, digests1 = one_run()
    _, sig2, digests2 = one_run()

    fs = [r.fault_stats for r in first]
    degraded = sum(1 for s in fs if s.partition_components > 1)
    suspended = sum(s.suspended_transfers for s in fs)
    commits = sum(s.healed_commits for s in fs)
    rollbacks = sum(s.healed_rollbacks for s in fs)
    assert degraded >= 1, "no degraded rounds ran under the partition plan"
    assert fs[-1].epoch == 2, f"expected final epoch 2, got {fs[-1].epoch}"
    assert suspended == commits + rollbacks, (
        f"heal lost track of transfers: suspended={suspended} "
        f"commits={commits} rollbacks={rollbacks}"
    )
    assert sig1 == sig2, f"fault sequences diverged: {sig1} != {sig2}"
    assert digests1 == digests2, "round digests diverged across identical runs"

    return (
        f"partition smoke OK: nodes={num_nodes} degraded_rounds={degraded} "
        f"suspended={suspended} commits={commits} rollbacks={rollbacks} "
        f"regrafts={sum(s.regrafts for s in fs)} epoch={fs[-1].epoch} "
        f"signature={sig1[:12]} (reproduced)"
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.partition [--smoke]`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.experiments.partition",
        description="partition-tolerance sweep / smoke for the balancer",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small fixed-seed acceptance scenario and assert "
        "conservation through partition and heal, plus reproducibility",
    )
    parser.add_argument(
        "--corrupt-heal",
        action="store_true",
        help="smoke only: drop one suspended transfer during the heal; "
        "the conservation guard must abort the run (negative control)",
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--duration", type=int, default=None,
        help="sweep only: rounds the partition stays active",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweep (default: serial)",
    )
    args = parser.parse_args(argv)

    if args.corrupt_heal and not args.smoke:
        parser.error("--corrupt-heal requires --smoke")

    if args.smoke:
        print(
            smoke(
                num_nodes=args.nodes if args.nodes is not None else 64,
                seed=args.seed if args.seed is not None else 7,
                corrupt_heal=args.corrupt_heal,
            )
        )
        return 0

    settings = ExperimentSettings.from_env()
    if args.nodes is not None:
        settings = replace(settings, num_nodes=args.nodes)
    if args.seed is not None:
        settings = replace(settings, seed=args.seed)
    if args.workers is not None:
        settings = replace(settings, workers=args.workers)
    duration = args.duration if args.duration is not None else 2
    print(run(settings, duration=duration).format_rows())
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
