"""Shared experiment settings and helpers.

The paper's full scale (4096 nodes x 5 virtual servers, ~5000-vertex
topologies) runs in seconds; tests and quick benchmarks use reduced
sizes.  ``ExperimentSettings.paper()`` and ``.quick()`` capture both,
and ``from_env()`` lets ``REPRO_SCALE=paper`` switch the benchmark suite
to full scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.constants import DEFAULT_NUM_NODES, DEFAULT_VS_PER_NODE


@dataclass(frozen=True, slots=True)
class ExperimentSettings:
    """Scale and seed knobs shared by all experiments."""

    num_nodes: int = DEFAULT_NUM_NODES
    vs_per_node: int = DEFAULT_VS_PER_NODE
    mu: float = 1e6
    sigma: float = 2e3
    epsilon: float = 0.05
    tree_degree: int = 2
    grid_bits: int = 4
    seed: int = 42
    balancer_seed: int = 5
    #: Worker processes for seed sweeps (variance/chaos); ``1`` keeps the
    #: historical serial code path.  Results are seed-determined either
    #: way — workers only changes wall-clock, never outputs.
    workers: int = 1

    @classmethod
    def paper(cls) -> "ExperimentSettings":
        """The paper's published scale."""
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Reduced scale for CI and default benchmark runs."""
        return cls(num_nodes=512)

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        """``REPRO_SCALE=paper`` selects full scale; anything else quick.

        ``REPRO_SEED`` overrides the scenario seed and ``REPRO_WORKERS``
        the trial-engine worker count.
        """
        scale = os.environ.get("REPRO_SCALE", "quick").lower()
        base = cls.paper() if scale == "paper" else cls.quick()
        seed = os.environ.get("REPRO_SEED")
        if seed is not None:
            base = replace(base, seed=int(seed))
        workers = os.environ.get("REPRO_WORKERS")
        if workers is not None:
            base = replace(base, workers=int(workers))
        return base


def pct(x: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100 * x:.1f}%"
