"""Figure 8: moved-load distribution on ts5k-small (thin wrapper).

See :mod:`repro.experiments.fig7` for the shared implementation; the
only difference is the topology.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentSettings
from repro.experiments.fig7 import Fig78Result, run_small


def run(settings: ExperimentSettings | None = None) -> Fig78Result:
    """Run the figure-8 experiment (ts5k-small)."""
    return run_small(settings)
