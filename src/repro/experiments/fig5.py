"""Figure 5: load by capacity category, Gaussian distribution.

Expected shape: before balancing, mean load is flat across capacity
categories (load is placed by hashing, blind to capacity); after
balancing, mean load increases monotonically with capacity — the two
skews (load and capacity) aligned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.figures import Figure56Data, figure56_data
from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport
from repro.experiments.common import ExperimentSettings
from repro.workloads.loads import GaussianLoadModel
from repro.workloads.scenario import build_scenario


@dataclass(frozen=True)
class Fig56Result:
    settings: ExperimentSettings
    data: Figure56Data
    report: BalanceReport

    def format_rows(self) -> str:
        d = self.data
        lines = [
            f"Figure {'5' if d.distribution == 'gaussian' else '6'} - "
            f"load vs capacity category ({d.distribution})",
            f"  {'capacity':>10} {'count':>6} {'mean load before':>17} "
            f"{'mean load after':>16} {'share before':>13} {'share after':>12}",
        ]
        for c in d.categories:
            s = d.summary[float(c)]
            lines.append(
                f"  {c:>10g} {s['count']:>6d} {s['mean_load_before']:>17.1f} "
                f"{s['mean_load_after']:>16.1f} {100 * s['share_before']:>12.1f}% "
                f"{100 * s['share_after']:>11.1f}%"
            )
        lines.append(
            "  [paper: after balancing, higher-capacity categories carry more load]"
        )
        return "\n".join(lines)


def run(settings: ExperimentSettings | None = None) -> Fig56Result:
    """Run the figure-5 experiment (Gaussian loads, capacity alignment)."""
    s = settings if settings is not None else ExperimentSettings.from_env()
    scenario = build_scenario(
        GaussianLoadModel(mu=s.mu, sigma=s.sigma),
        num_nodes=s.num_nodes,
        vs_per_node=s.vs_per_node,
        rng=s.seed,
    )
    balancer = LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant",
            epsilon=s.epsilon,
            tree_degree=s.tree_degree,
        ),
        rng=s.balancer_seed,
    )
    report = balancer.run_round()
    return Fig56Result(
        settings=s, data=figure56_data(report, "gaussian"), report=report
    )
