"""Byzantine robustness: lying nodes vs the trusted-aggregation defense.

Each sweep point runs several consecutive balancing rounds over the
*same* Gaussian scenario under an
:class:`~repro.adversary.AdversaryPlan` that drafts a fraction ``f`` of
the nodes as attackers (load under/over-reporters, capacity inflators,
report oscillators, transfer renegers, false accusers), once with the
trusted-aggregation defense off and once with it on.  The interesting
output is *damage*, measured against ground truth the protocol never
sees:

* ``honest_heavy_end`` — honest nodes still heavy (true load above
  ``(1 + eps)`` times their fair target computed from true totals)
  after the last round: attackers distort the aggregate and soak up or
  repel transfers, so honest overload persists;
* ``damage`` — the *honest excess load*: the total true load honest
  nodes carry above their ``(1 + eps)`` fair targets at the end.  A
  magnitude, not a count, so a ring left 3% over fair (the bounded
  price of quarantining attacker capacity) scores far below one left
  with a few nodes at several times their target (what unchecked lies
  produce).

``python -m repro.experiments.byzantine --smoke`` runs the acceptance
scenario and asserts the defense strictly reduces damage at ``f=10%``,
that ``f=0`` with the defense armed is digest-identical to a run with
no plan at all (the zero-overhead-when-clean contract), and that a
repeat run reproduces the byte-identical attack signature and per-round
digests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial

from repro.adversary import AdversaryPlan
from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport, check_conservation
from repro.experiments.common import ExperimentSettings
from repro.parallel.trials import TrialExecutor
from repro.workloads.loads import GaussianLoadModel
from repro.workloads.scenario import build_scenario

#: Attacker fractions swept by default (the paper-style 0..20% range).
DEFAULT_FRACTIONS: tuple[float, ...] = (0.0, 0.01, 0.05, 0.10, 0.20)

#: Rounds each sweep point runs: enough for the trust scores to cross
#: the quarantine threshold and the re-tiled ring to re-balance.
ROUNDS_PER_POINT = 6


@dataclass(frozen=True)
class ByzantineRow:
    """One sweep point: attacker fraction x defense arming."""

    fraction: float
    defense: bool
    attackers: int
    lies: int
    reneged: int
    suppressed: int
    accusations: int
    refuted: int
    audits_failed: int
    quarantined_end: int
    honest_heavy_end: int
    damage: float
    transfers: int
    moved_load: float
    signature: str
    final_digest: str


@dataclass(frozen=True)
class ByzantineResult:
    settings: ExperimentSettings
    rows: list[ByzantineRow]

    def format_rows(self) -> str:
        lines = [
            "Byzantine sweep - attacker fraction x defense vs damage "
            f"(rounds={ROUNDS_PER_POINT}, nodes={self.settings.num_nodes})",
            f"  {'f':>5} {'def':>3} {'atk':>4} {'lies':>5} {'reneg':>6} "
            f"{'suppr':>6} {'refut':>6} {'audit!':>7} {'quar':>5} "
            f"{'honest-heavy':>13} {'damage':>7} {'xfers':>6}",
        ]
        for r in self.rows:
            lines.append(
                f"  {r.fraction:>5.2f} {'on' if r.defense else 'off':>3} "
                f"{r.attackers:>4} {r.lies:>5} {r.reneged:>6} "
                f"{r.suppressed:>6} {r.refuted:>6} {r.audits_failed:>7} "
                f"{r.quarantined_end:>5} {r.honest_heavy_end:>13} "
                f"{r.damage:>10.1f} {r.transfers:>6}"
            )
        lines.append(
            "  [damage = honest excess load: true load honest nodes carry "
            "above their (1+eps) fair targets at the end]"
        )
        return "\n".join(lines)


def _build_balancer(
    settings: ExperimentSettings, plan: AdversaryPlan | None
) -> LoadBalancer:
    """The shared scenario + balancer for one sweep point."""
    scenario = build_scenario(
        GaussianLoadModel(mu=settings.mu, sigma=settings.sigma),
        num_nodes=settings.num_nodes,
        vs_per_node=settings.vs_per_node,
        rng=settings.seed,
    )
    return LoadBalancer(
        scenario.ring,
        BalancerConfig(
            proximity_mode="ignorant",
            epsilon=settings.epsilon,
            tree_degree=settings.tree_degree,
        ),
        rng=settings.balancer_seed,
        adversary=plan,
    )


def _run_rounds(balancer: LoadBalancer, rounds: int) -> list[BalanceReport]:
    """Run consecutive rounds, conservation-checking every one.

    Byzantine lies distort what nodes *claim*, never what they hold, so
    true load is conserved round for round regardless of the plan.
    """
    reports = []
    for _ in range(rounds):
        report = balancer.run_round()
        check_conservation(report)
        reports.append(report)
    return reports


def _honest_damage(
    balancer: LoadBalancer, epsilon: float, attackers: frozenset[int]
) -> tuple[int, float]:
    """``(heavy count, excess load)`` over honest nodes, by *true* state.

    The ground-truth damage measure: fair targets are computed from the
    true totals (which the protocol under attack never sees), so a lie
    that leaves honest nodes overloaded is charged here even when the
    lied-to classification called them fine.
    """
    alive = balancer.ring.alive_nodes
    total_load = float(sum(n.load for n in alive))
    total_capacity = float(sum(n.capacity for n in alive))
    if total_capacity <= 0:
        return 0, 0.0
    heavy = 0
    excess = 0.0
    for node in alive:
        if node.index in attackers:
            continue
        bound = (1.0 + epsilon) * node.capacity * total_load / total_capacity
        if node.load > bound:
            heavy += 1
            excess += node.load - bound
    return heavy, excess


def byzantine_row(
    settings: ExperimentSettings,
    points: tuple[tuple[float, bool], ...],
    adversary_seed: int,
    point_index: int,
) -> ByzantineRow:
    """One sweep point: ``(fraction, defense) = points[point_index]``.

    Module-level and keyed by an integer index so the parallel trial
    engine can ship it to workers via :func:`functools.partial`; a pure
    function of its arguments either way, so serial and parallel sweeps
    produce identical rows.
    """
    fraction, defense = points[point_index]
    plan = AdversaryPlan(
        seed=adversary_seed, fraction=fraction, defense=defense
    )
    balancer = _build_balancer(settings, plan)
    reports = _run_rounds(balancer, ROUNDS_PER_POINT)
    advs = [r.adversary_stats for r in reports]
    attackers = (
        frozenset(balancer.adversary.attacker_indices)
        if balancer.adversary is not None
        else frozenset()
    )
    honest_heavy, excess = _honest_damage(
        balancer, settings.epsilon, attackers
    )
    return ByzantineRow(
        fraction=fraction,
        defense=defense,
        attackers=advs[-1].attackers,
        lies=sum(a.lies_total for a in advs),
        reneged=sum(a.reneged_transfers for a in advs),
        suppressed=sum(a.reports_suppressed for a in advs),
        accusations=sum(a.accusations for a in advs),
        refuted=sum(a.accusations_refuted for a in advs),
        audits_failed=sum(a.audits_failed for a in advs),
        quarantined_end=len(advs[-1].quarantined),
        honest_heavy_end=honest_heavy,
        damage=excess,
        transfers=sum(len(r.transfers) for r in reports),
        moved_load=float(sum(r.moved_load for r in reports)),
        signature=advs[-1].signature,
        final_digest=reports[-1].canonical_digest(),
    )


def run(
    settings: ExperimentSettings | None = None,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    adversary_seed: int | None = None,
) -> ByzantineResult:
    """Sweep attacker fractions x defense against one fixed scenario.

    The scenario seed is held constant across the sweep so every row
    faces the identical initial load distribution; only the adversary
    changes.  ``adversary_seed`` defaults to the scenario seed, keeping
    the whole sweep a pure function of the settings.  With
    ``settings.workers > 1`` the sweep points run in parallel through
    :class:`repro.parallel.TrialExecutor` (each point rebuilds its own
    scenario, so rows come out identical to a serial sweep's).
    """
    s = settings if settings is not None else ExperimentSettings.from_env()
    aseed = adversary_seed if adversary_seed is not None else s.seed
    points = tuple(
        (fraction, defense)
        for fraction in fractions
        for defense in (False, True)
    )
    row_fn = partial(byzantine_row, s, points, aseed)
    indices = range(len(points))
    if s.workers > 1:
        with TrialExecutor(workers=s.workers) as executor:
            rows = list(executor.map(row_fn, indices))
    else:
        rows = [row_fn(index) for index in indices]
    return ByzantineResult(settings=s, rows=rows)


# ----------------------------------------------------------------------
# Smoke mode (the verify.sh byzantine stage)
# ----------------------------------------------------------------------
def smoke(num_nodes: int = 64, seed: int = 7) -> str:
    """The acceptance scenario: lies mounted, damage bounded, books clean.

    Runs six rounds on a small ring at ``f=10%`` attackers with the
    defense off and on (identical adversary seed, so both runs face the
    same drafted attacker set and the same lies), plus the two control
    runs.  Asserts:

    * attackers actually acted (lies and a non-empty attack signature)
      and every round conserved true load;
    * the defense quarantined at least one attacker and strictly
      reduced composite damage versus the undefended run;
    * ``f=0`` with the defense armed produces per-round canonical
      digests byte-identical to a run with no adversary plan at all
      (zero overhead when clean);
    * a repeat defended run reproduces the byte-identical attack
      signature and per-round digests.

    Returns a one-line summary for the verify log; raises
    ``AssertionError`` on any violation.
    """
    settings = ExperimentSettings(num_nodes=num_nodes, seed=seed)
    points = ((0.10, False), (0.10, True))

    off = byzantine_row(settings, points, seed, 0)
    on = byzantine_row(settings, points, seed, 1)
    on_repeat = byzantine_row(settings, points, seed, 1)

    assert off.lies > 0 and off.signature, (
        "the undefended adversary never acted; the scenario is too small"
    )
    assert on.quarantined_end > 0, "defense never quarantined an attacker"
    assert off.damage > 0, (
        "the undefended adversary left no honest excess load; the "
        "scenario cannot discriminate the defense"
    )
    assert on.damage < off.damage, (
        f"defense did not reduce damage: defended={on.damage:.1f} "
        f"undefended={off.damage:.1f}"
    )
    assert on.signature == on_repeat.signature, (
        f"attack sequences diverged: {on.signature} != {on_repeat.signature}"
    )
    assert on.final_digest == on_repeat.final_digest, (
        "round digests diverged across identical defended runs"
    )

    clean = _build_balancer(settings, None)
    clean_digests = [
        r.canonical_digest() for r in _run_rounds(clean, ROUNDS_PER_POINT)
    ]
    armed = _build_balancer(
        settings, AdversaryPlan(seed=seed, fraction=0.0, defense=True)
    )
    armed_digests = [
        r.canonical_digest() for r in _run_rounds(armed, ROUNDS_PER_POINT)
    ]
    assert clean_digests == armed_digests, (
        "f=0 with defense armed diverged from the no-plan run "
        "(zero-overhead-when-clean violated)"
    )

    return (
        f"byzantine smoke OK: nodes={num_nodes} f=0.10 "
        f"attackers={off.attackers} lies(off)={off.lies} "
        f"damage off={off.damage:.1f} -> on={on.damage:.1f} "
        f"quarantined={on.quarantined_end} refuted={on.refuted} "
        f"clean-run digests identical, signature={on.signature[:12]} "
        f"(reproduced)"
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.byzantine [--smoke]`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.experiments.byzantine",
        description="Byzantine-robustness sweep / smoke for the balancer",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small fixed-seed acceptance scenario and assert "
        "the defense reduces damage plus the zero-overhead and "
        "reproducibility contracts",
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweep (default: serial)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        print(
            smoke(
                num_nodes=args.nodes if args.nodes is not None else 64,
                seed=args.seed if args.seed is not None else 7,
            )
        )
        return 0

    settings = ExperimentSettings.from_env()
    if args.nodes is not None:
        settings = replace(settings, num_nodes=args.nodes)
    if args.seed is not None:
        settings = replace(settings, seed=args.seed)
    if args.workers is not None:
        settings = replace(settings, workers=args.workers)
    print(run(settings).format_rows())
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
