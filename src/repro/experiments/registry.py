"""Registry mapping experiment ids to their drivers."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.exceptions import ReproError
from repro.experiments import (
    byzantine,
    chaos,
    convergence,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    partition,
    timing,
    variance,
)

#: Experiment id -> (run callable, one-line description).
EXPERIMENTS: dict[str, tuple[Callable[..., Any], str]] = {
    "fig4": (fig4.run, "unit load before/after balancing (Gaussian)"),
    "fig5": (fig5.run, "load vs capacity category (Gaussian)"),
    "fig6": (fig6.run, "load vs capacity category (Pareto)"),
    "fig7": (fig7.run, "moved load vs transfer distance, ts5k-large"),
    "fig8": (fig8.run, "moved load vs transfer distance, ts5k-small"),
    "timing": (timing.run, "O(log_K N) phase-round measurements"),
    "convergence": (
        convergence.run,
        "multi-round convergence at epsilon=0, with/without VS splitting",
    ),
    "variance": (
        variance.run,
        "seed-variance (error bars) of the figure-7 headline numbers",
    ),
    "chaos": (
        chaos.run,
        "fault-rate sweep: message drop vs achieved load movement",
    ),
    "byzantine": (
        byzantine.run,
        "Byzantine sweep: attacker fraction x defense vs honest damage",
    ),
    "partition": (
        partition.run,
        "partition-tolerance sweep: component count vs heal outcome",
    ),
}


def get_experiment(name: str) -> Callable[..., Any]:
    """The ``run`` callable for an experiment id."""
    try:
        return EXPERIMENTS[name][0]
    except KeyError:
        raise ReproError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def list_experiments() -> list[tuple[str, str]]:
    """``(id, description)`` pairs, sorted by id."""
    return sorted((name, desc) for name, (_, desc) in EXPERIMENTS.items())
