"""Figures 7 and 8: moved-load distribution over transfer distance.

The same experiment runs on two topologies:

* figure 7 — ``ts5k-large`` (few large campus-like stub domains).
  Paper: proximity-aware moves ~67% of load within 2 latency units and
  ~86% within 10; proximity-ignorant only ~13% within 10.
* figure 8 — ``ts5k-small`` (peers scattered over the whole Internet).
  Paper: the aware scheme still clearly beats the ignorant one, though
  the gap narrows.

Both the aware and ignorant balancer run on *identical* scenarios (same
ring, same loads, same topology, same sites), so the only difference is
the placement of VSA information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.figures import Figure78Data, figure78_data
from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport
from repro.experiments.common import ExperimentSettings, pct
from repro.topology.transit_stub import TS5K_LARGE, TS5K_SMALL, TransitStubParams
from repro.workloads.loads import GaussianLoadModel
from repro.workloads.scenario import build_scenario


@dataclass(frozen=True)
class Fig78Result:
    settings: ExperimentSettings
    data: Figure78Data
    aware_report: BalanceReport
    ignorant_report: BalanceReport

    def format_rows(self) -> str:
        d = self.data
        lines = [
            f"Figures 7/8 - moved load vs transfer distance on {d.topology_name}",
            f"  {'distance <=':>12} {'aware':>8} {'ignorant':>9}",
        ]
        for mark in sorted(d.aware_within):
            lines.append(
                f"  {mark:>12} {pct(d.aware_within[mark]):>8} "
                f"{pct(d.ignorant_within[mark]):>9}"
            )
        if d.topology_name == "ts5k-large":
            lines.append(
                "  [paper ts5k-large: aware ~67% within 2, ~86% within 10; "
                "ignorant ~13% within 10]"
            )
        else:
            lines.append(
                "  [paper ts5k-small: aware still clearly ahead of ignorant]"
            )
        return "\n".join(lines)


def _run_on(
    params: TransitStubParams, s: ExperimentSettings
) -> Fig78Result:
    reports: dict[str, BalanceReport] = {}
    for mode in ("aware", "ignorant"):
        # Identical scenario seed => identical ring/loads/topology/sites.
        scenario = build_scenario(
            GaussianLoadModel(mu=s.mu, sigma=s.sigma),
            num_nodes=s.num_nodes,
            vs_per_node=s.vs_per_node,
            topology_params=params,
            rng=s.seed,
        )
        balancer = LoadBalancer(
            scenario.ring,
            BalancerConfig(
                proximity_mode=mode,
                epsilon=s.epsilon,
                tree_degree=s.tree_degree,
                grid_bits=s.grid_bits,
            ),
            topology=scenario.topology,
            oracle=scenario.oracle,
            rng=s.balancer_seed,
        )
        reports[mode] = balancer.run_round()
    data = figure78_data(reports["aware"], reports["ignorant"], params.name)
    return Fig78Result(
        settings=s,
        data=data,
        aware_report=reports["aware"],
        ignorant_report=reports["ignorant"],
    )


def run(settings: ExperimentSettings | None = None) -> Fig78Result:
    """Figure 7: ts5k-large."""
    s = settings if settings is not None else ExperimentSettings.from_env()
    return _run_on(TS5K_LARGE, s)


def run_small(settings: ExperimentSettings | None = None) -> Fig78Result:
    """Figure 8: ts5k-small."""
    s = settings if settings is not None else ExperimentSettings.from_env()
    return _run_on(TS5K_SMALL, s)
