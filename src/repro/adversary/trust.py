"""Trusted aggregation: witness audits, trust scores, quarantine.

:class:`TrustedAggregation` grows the
:class:`~repro.core.lbi.AggregateSanity` plausibility gate into a
defense against *plausible lies* — reports that satisfy every
plausibility rule yet misstate the node's true load or capacity, which
in a genuinely heterogeneous network (capacities varying by orders of
magnitude) baseline sanity cannot distinguish from honest reports.
Three evidence channels feed one per-node trust score:

* **witness audits** — seeded spot-checks (one uniform draw per report
  from the engine's dedicated audit stream, so sampling is byte-
  reproducible and independent of attack traffic) compare the claimed
  ``<L, C>`` against the ground truth a parent probing the reporter's
  grandchildren would observe; a deviation beyond the audit tolerance
  substitutes the truth into the aggregate and charges the reporter;
* **EWMA plausibility envelopes** — each node's admitted load keeps an
  exponentially-weighted mean and deviation, shifted by the executed
  transfer deltas the balancer reports (so honest nodes whose load
  legitimately moved stay inside their envelope); a report far outside
  it is suspicious but *admitted* — the envelope only nudges trust;
* **transfer-outcome accounting** — a source that prepared transfers
  and never delivered (promised vs delivered deltas from
  :class:`~repro.core.vst.TransferTransaction` rollbacks) is charged
  once per reneging round, and a refuted false accusation charges the
  accuser.

Trust moves with hysteresis: penalties are immediate, recovery credit
(+``RECOVERY_CREDIT`` per clean round) is withheld for one round after
any penalty, quarantine triggers below ``QUARANTINE_THRESHOLD`` and
releases only above the higher ``REJOIN_THRESHOLD`` — into *probation*,
where every report is audited until ``PROBATION_ROUNDS`` consecutive
clean audits pass.  Quarantined nodes are excluded from the round: the
balancer re-tiles the ring without them via
:class:`~repro.membership.views.ComponentRingView`, and any report
that still arrives (degraded partitioned rounds) is rejected at the
gate.

Determinism contract: every decision here is a pure function of
``(scenario seed, adversary plan)`` — the audit stream is spawned from
``plan.seed``, all iteration is over sorted indices, and the full
mutable state (trust scores, envelopes, quarantine and probation sets)
rides :class:`~repro.recovery.SystemSnapshot` so a crashed-and-
recovered run replays to byte-identical digests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.adversary.stats import AdversaryRoundStats
from repro.core.lbi import AggregateSanity
from repro.faults.stats import FaultRoundStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _relative_deviation(claimed: float, truth: float) -> float:
    """Deviation of a claim from the truth, scaled by the truth's size."""
    return abs(claimed - truth) / max(abs(truth), 1.0)


class TrustedAggregation(AggregateSanity):
    """The trust-scored defense layer over the LBI plausibility gate.

    Parameters
    ----------
    staleness:
        Maximum admissible epoch age (as for the base gate).
    rng:
        The witness-audit sampling stream — the engine's
        :attr:`~repro.adversary.engine.AdversaryEngine.audit_rng`, so
        one snapshot of the engine captures all adversarial RNG state.
    tracer:
        Structured tracer for ``trust.*`` events.
    metrics:
        Registry for ``trust.*`` counters (``None`` = off).
    """

    #: Probability each delivered report is witness-audited (probation
    #: forces an audit regardless).  One uniform is drawn per report
    #: either way, so stream consumption is independent of outcomes.
    AUDIT_RATE = 0.3
    #: Relative deviation between claim and witness observation above
    #: which an audit fails (generous enough for rounding, far below
    #: any configured lie factor).
    AUDIT_TOLERANCE = 0.05
    #: EWMA smoothing factor for the per-node load envelope.
    EWMA_ALPHA = 0.5
    #: Envelope half-width: this many deviations (floored at a capacity
    #: fraction) around the EWMA mean.
    ENVELOPE_FACTOR = 4.0
    #: Capacity fraction flooring the envelope deviation estimate.
    ENVELOPE_FLOOR = 0.0625
    #: Trust score bounds and thresholds (hysteresis: quarantine enters
    #: below ``QUARANTINE_THRESHOLD``, releases above the higher
    #: ``REJOIN_THRESHOLD``).
    INITIAL_TRUST = 1.0
    QUARANTINE_THRESHOLD = 0.4
    REJOIN_THRESHOLD = 0.7
    #: Consecutive clean audited reports required to clear probation.
    PROBATION_ROUNDS = 2
    #: Penalty sizes per evidence channel, and the per-round recovery
    #: credit (withheld for one round after any penalty).
    PENALTY_AUDIT = 0.7
    PENALTY_ACCUSE = 0.35
    PENALTY_RENEGE = 0.35
    PENALTY_ENVELOPE = 0.1
    RECOVERY_CREDIT = 0.1

    def __init__(
        self,
        staleness: int,
        rng: np.random.Generator,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Create an empty trust layer; see the class docstring."""
        super().__init__(staleness, tracer=tracer, metrics=metrics)
        self._audit_rng = rng
        self._trust: dict[int, float] = {}
        self._ewma: dict[int, tuple[float, float]] = {}
        self._quarantined: set[int] = set()
        self._probation: dict[int, int] = {}
        self._penalized: set[int] = set()
        self._adv_stats: AdversaryRoundStats | None = None

    # -- round lifecycle -------------------------------------------------
    def begin_round(
        self,
        epoch: int,
        stats: FaultRoundStats | None = None,
        alive_indices: Sequence[int] | None = None,
        adversary_stats: AdversaryRoundStats | None = None,
    ) -> None:
        """Arm the gate, evict departed nodes, apply trust transitions.

        Transition order: departed-node eviction, recovery credit (for
        nodes not penalized last round), probationary rejoin of
        quarantined nodes whose trust recovered past
        ``REJOIN_THRESHOLD``, then quarantine of nodes that fell below
        ``QUARANTINE_THRESHOLD``.  The resulting quarantine set is
        stable for the whole round (the balancer re-tiles against it
        before collection starts).
        """
        super().begin_round(epoch, stats, alive_indices=alive_indices)
        self._adv_stats = adversary_stats
        if alive_indices is not None:
            alive = frozenset(int(i) for i in alive_indices)
            for k in [k for k in self._trust if k not in alive]:
                del self._trust[k]
            for k in [k for k in self._ewma if k not in alive]:
                del self._ewma[k]
            for k in [k for k in self._probation if k not in alive]:
                del self._probation[k]
            self._quarantined &= alive
            self._penalized &= alive
        skip_credit = self._penalized
        self._penalized = set()
        for node in sorted(self._trust):
            if node not in skip_credit:
                self._trust[node] = min(
                    1.0, self._trust[node] + self.RECOVERY_CREDIT
                )
        for node in sorted(self._quarantined):
            if self._trust.get(node, 0.0) >= self.REJOIN_THRESHOLD:
                self._quarantined.discard(node)
                self._probation[node] = self.PROBATION_ROUNDS
                if self.metrics is not None:
                    self.metrics.counter("trust.rejoin").inc()
                if self.tracer is not None and self.tracer.enabled:
                    self.tracer.event("trust.rejoin", node=node)
        for node in sorted(self._trust):
            if (
                node not in self._quarantined
                and self._trust[node] < self.QUARANTINE_THRESHOLD
            ):
                self._quarantined.add(node)
                self._probation.pop(node, None)
                if self.metrics is not None:
                    self.metrics.counter("trust.quarantine").inc()
                if self.tracer is not None and self.tracer.enabled:
                    self.tracer.event("trust.quarantine", node=node)
        if adversary_stats is not None:
            adversary_stats.quarantined = sorted(self._quarantined)
            adversary_stats.probation = sorted(self._probation)

    @property
    def excluded(self) -> frozenset[int]:
        """Node indices quarantined for the current round."""
        return frozenset(self._quarantined)

    def trust_of(self, node_index: int) -> float:
        """The node's current trust score (``INITIAL_TRUST`` if unseen)."""
        return self._trust.get(node_index, self.INITIAL_TRUST)

    # -- evidence channels -----------------------------------------------
    def _penalize(self, node_index: int, amount: float, reason: str) -> None:
        """Charge one trust penalty (immediate, credit withheld next round)."""
        current = self._trust.get(node_index, self.INITIAL_TRUST)
        self._trust[node_index] = max(0.0, current - amount)
        self._penalized.add(node_index)
        if self.metrics is not None:
            self.metrics.counter("trust.penalties").inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                "trust.penalty", node=node_index, reason=reason
            )

    def witness_check(
        self,
        node_index: int,
        claimed: tuple[float, float, float],
        truth: tuple[float, float, float],
    ) -> tuple[float, float, float]:
        """Seeded spot-check of a claimed report against ground truth.

        Draws exactly one uniform from the audit stream per call; the
        report is audited when the draw lands under ``AUDIT_RATE`` or
        the node is on probation.  A failed audit substitutes the
        witnessed truth into the aggregate and charges the reporter;
        a clean audited report advances the node's probation countdown.
        Quarantined reporters are not audited (their report is rejected
        at the gate anyway) and consume no draw, which is safe because
        the quarantine set is itself a pure function of the run.
        """
        if node_index in self._quarantined:
            return claimed
        draw = float(self._audit_rng.random())
        audited = draw < self.AUDIT_RATE or node_index in self._probation
        if not audited:
            return claimed
        if self._adv_stats is not None:
            self._adv_stats.audits_run += 1
        deviates = (
            _relative_deviation(claimed[0], truth[0]) > self.AUDIT_TOLERANCE
            or _relative_deviation(claimed[1], truth[1]) > self.AUDIT_TOLERANCE
        )
        if not deviates:
            remaining = self._probation.get(node_index)
            if remaining is not None:
                if remaining <= 1:
                    del self._probation[node_index]
                else:
                    self._probation[node_index] = remaining - 1
            return claimed
        if self._adv_stats is not None:
            self._adv_stats.audits_failed += 1
            self._adv_stats.values_restored += 1
        if self.metrics is not None:
            self.metrics.counter("trust.audit_failures").inc()
        self._penalize(node_index, self.PENALTY_AUDIT, "witness_audit")
        return truth

    def refute_accusation(self, accuser: int) -> None:
        """Charge a false accuser whose victim's report proved liveness.

        Accusations from quarantined nodes are ignored outright (an
        excluded node cannot reach the heartbeat channel).
        """
        if accuser in self._quarantined:
            return
        if self._adv_stats is not None:
            self._adv_stats.accusations_refuted += 1
        self._penalize(accuser, self.PENALTY_ACCUSE, "false_accusation")

    def note_renege(self, source_index: int) -> None:
        """Charge a source that prepared transfers and never delivered.

        Called once per reneging source per round (the transfer-outcome
        accounting: promised load that was rolled back undelivered; the
        per-transfer tally lives in the balancer's round stats).
        """
        self._penalize(source_index, self.PENALTY_RENEGE, "renege")

    def note_transfer(
        self, source_index: int, target_index: int, load: float
    ) -> None:
        """Shift the endpoints' EWMA envelopes by one delivered transfer.

        Keeps honest nodes whose load legitimately moved inside their
        plausibility envelope — the expected next report follows the
        executed delta.
        """
        prev = self._ewma.get(source_index)
        if prev is not None:
            self._ewma[source_index] = (prev[0] - load, prev[1])
        prev = self._ewma.get(target_index)
        if prev is not None:
            self._ewma[target_index] = (prev[0] + load, prev[1])

    # -- the gate --------------------------------------------------------
    def _delta_implausible(
        self, node_index: int, load: float, capacity: float
    ) -> bool:
        """Supersede the blind load-swing heuristic with the envelope.

        The base rule bounds per-report swings by a capacity multiple
        and so rejects honest nodes that legitimately absorbed a large
        rebalancing delta.  This layer tracks exactly those deltas
        (:meth:`note_transfer` shifts each node's EWMA mean by every
        executed transfer), so once a node has an envelope the blind
        heuristic is retired: verified movement passes, and a claim far
        off the transfer-accounted expectation is charged through the
        envelope breach in :meth:`admit` instead of being silently
        swapped for a stale value.  First-sight nodes (no envelope yet)
        keep the base rule.
        """
        if node_index in self._ewma:
            return False
        return super()._delta_implausible(node_index, load, capacity)

    def admit(
        self,
        node_index: int,
        load: float,
        capacity: float,
        min_vs: float,
        epoch: int,
    ) -> tuple[float, float, float] | None:
        """Gate one report: quarantine rejection, base rules, envelope.

        A quarantined node's report is rejected outright (counted via
        the base gate's quarantine accounting).  Otherwise the base
        plausibility rules run first; an admitted report is then
        checked against the node's EWMA envelope — a breach charges a
        small trust penalty but the report is still admitted (the
        envelope is a suspicion signal, not a correctness rule) — and
        folded into the envelope.
        """
        if node_index in self._quarantined:
            self._quarantine(node_index, "trust_quarantined")
            return None
        admitted = super().admit(node_index, load, capacity, min_vs, epoch)
        if admitted is None:
            return None
        adm_load, adm_capacity, _ = admitted
        self._trust.setdefault(node_index, self.INITIAL_TRUST)
        prev = self._ewma.get(node_index)
        if prev is None:
            self._ewma[node_index] = (
                adm_load,
                self.ENVELOPE_FLOOR * max(adm_capacity, 1.0),
            )
            return admitted
        mean, dev = prev
        bound = self.ENVELOPE_FACTOR * max(
            dev, self.ENVELOPE_FLOOR * max(adm_capacity, 1.0)
        )
        if abs(adm_load - mean) > bound:
            if self._adv_stats is not None:
                self._adv_stats.envelope_breaches += 1
            if self.metrics is not None:
                self.metrics.counter("trust.envelope_breaches").inc()
            self._penalize(node_index, self.PENALTY_ENVELOPE, "envelope")
        error = adm_load - mean
        new_mean = mean + self.EWMA_ALPHA * error
        new_dev = (
            1.0 - self.EWMA_ALPHA
        ) * dev + self.EWMA_ALPHA * abs(error)
        self._ewma[node_index] = (new_mean, new_dev)
        return admitted
