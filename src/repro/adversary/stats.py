"""Per-round accounting of Byzantine behavior and the defense's response.

One :class:`AdversaryRoundStats` instance rides on each
:class:`~repro.core.report.BalanceReport` produced under an
:class:`~repro.adversary.AdversaryPlan`, so the ``byzantine``
experiment can attribute damage — excess imbalance, wasted movement,
suppressed reports — to attackers and score how much of it the
:class:`~repro.adversary.trust.TrustedAggregation` defense clawed back.

The split between :meth:`AdversaryRoundStats.digest_fields` and
:meth:`AdversaryRoundStats.to_dict` is the determinism contract:
digest fields are *protocol outcomes* (what lies landed, who is
quarantined, what movement attackers caused) and enter
:meth:`~repro.core.report.BalanceReport.canonical_digest`; the rest are
*observational* counters (audits sampled, envelope breaches noted) that
an armed-but-dormant defense accrues without changing any protocol
decision — including them would break the zero-overhead-when-clean
digest identity the acceptance tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class AdversaryRoundStats:
    """What the attackers did — and what the trust layer did about it.

    ``attackers`` counts the attackers *active* this round (armed and
    past ``start_round``).  ``lies_load`` / ``lies_capacity`` /
    ``lies_oscillate`` count reports altered by each lie family;
    ``reneged_transfers`` counts prepared-then-never-delivered VST
    moves; ``accusations`` / ``accusations_refuted`` /
    ``reports_suppressed`` track the false-accusation channel (a
    suppressed report is an accusation that landed because no defense
    cross-checked it).  ``audits_failed`` and ``values_restored`` count
    witness audits that caught a lie and substituted ground truth;
    ``quarantined`` / ``probation`` list the nodes currently excluded
    or on probationary rejoin.  ``attacker_transfers`` and
    ``attacker_moved_load`` attribute executed movement to attacker
    endpoints.  ``audits_run`` and ``envelope_breaches`` are
    observational (see the module docstring); ``signature`` is the
    engine's action-log hash at round end (empty while no action has
    fired) and ``actions_total`` its log length.
    """

    attackers: int = 0
    lies_load: int = 0
    lies_capacity: int = 0
    lies_oscillate: int = 0
    reneged_transfers: int = 0
    accusations: int = 0
    accusations_refuted: int = 0
    reports_suppressed: int = 0
    audits_failed: int = 0
    values_restored: int = 0
    quarantined: list[int] = field(default_factory=list)
    probation: list[int] = field(default_factory=list)
    attacker_transfers: int = 0
    attacker_moved_load: float = 0.0
    audits_run: int = 0
    envelope_breaches: int = 0
    signature: str = ""
    actions_total: int = 0

    @property
    def lies_total(self) -> int:
        """Reports altered by any lie family this round."""
        return self.lies_load + self.lies_capacity + self.lies_oscillate

    def digest_fields(self) -> dict[str, Any]:
        """The protocol-outcome fields pinned by the canonical digest."""
        return {
            "attackers": self.attackers,
            "lies_load": self.lies_load,
            "lies_capacity": self.lies_capacity,
            "lies_oscillate": self.lies_oscillate,
            "reneged_transfers": self.reneged_transfers,
            "accusations": self.accusations,
            "accusations_refuted": self.accusations_refuted,
            "reports_suppressed": self.reports_suppressed,
            "audits_failed": self.audits_failed,
            "values_restored": self.values_restored,
            "quarantined": list(self.quarantined),
            "probation": list(self.probation),
            "attacker_transfers": self.attacker_transfers,
            "attacker_moved_load": self.attacker_moved_load,
            "signature": self.signature,
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly export (digest fields plus observational ones)."""
        payload = self.digest_fields()
        payload["audits_run"] = self.audits_run
        payload["envelope_breaches"] = self.envelope_breaches
        payload["actions_total"] = self.actions_total
        return payload
