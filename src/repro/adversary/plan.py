"""The declarative Byzantine-adversary model: who lies, how, seeded how.

An :class:`AdversaryPlan` is a frozen value object describing the
*Byzantine* environment a balancing run operates under — the next rung
of the fault hierarchy above the crash/omission/partition faults of
:mod:`repro.faults`.  Like a :class:`~repro.faults.FaultPlan` it
carries *intent*, never decisions: which nodes actually turn
adversarial, which victims a false accuser picks, and which reports the
defense spot-checks are all drawn by an
:class:`~repro.adversary.engine.AdversaryEngine` from dedicated
``SeedSequence`` streams rooted at ``plan.seed``, keeping every attack
history a pure function of ``(scenario seed, plan)``.

The behavior models target the protocol surfaces a lying node can
actually reach:

* **load under-reporter** (:data:`UNDER_REPORT`) — claims a fraction of
  its true load, attracting transfers it does not need and starving
  genuinely heavy peers;
* **load over-reporter** (:data:`OVER_REPORT`) — claims a multiple of
  its true load, shedding virtual servers onto honest nodes;
* **capacity inflator** (:data:`INFLATE_CAPACITY`) — claims outsized
  capacity, which in Mirrezaei & Shahparian's heterogeneous setting is
  indistinguishable from a genuinely big node without cross-checking;
* **report oscillator** (:data:`OSCILLATE`) — flip-flops between over-
  and under-reporting on alternate rounds to induce transfer thrashing;
* **VST reneger** (:data:`RENEGE`) — reports honestly but prepares
  virtual-server handoffs and never delivers them, wasting movement
  budget (the two-phase commit rolls every reneged transfer back);
* **false accuser** (:data:`ACCUSE`) — the heartbeat liar: each round
  it accuses one honest peer of being dead, suppressing the victim's
  report when no defense cross-checks liveness.

Lies are deliberately *plausible*: they respect the
:class:`~repro.core.lbi.AggregateSanity` envelope (finite, positive,
consistent ``<L, C, L_min>`` triples), which is exactly why the
:class:`~repro.adversary.trust.TrustedAggregation` defense — witness
audits, EWMA envelopes, transfer-outcome accounting and trust-scored
quarantine — exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import AdversaryPlanError

#: Behavior model names (see the module docstring for their semantics).
UNDER_REPORT = "under_report"
OVER_REPORT = "over_report"
INFLATE_CAPACITY = "inflate_capacity"
OSCILLATE = "oscillate"
RENEGE = "renege"
ACCUSE = "accuse"

#: Every behavior model an attacker may be assigned, in canonical order
#: (the order matters: seeded behavior draws index into this tuple).
BEHAVIORS = (
    UNDER_REPORT,
    OVER_REPORT,
    INFLATE_CAPACITY,
    OSCILLATE,
    RENEGE,
    ACCUSE,
)


def _check_fraction(name: str, value: float) -> None:
    """Raise :class:`AdversaryPlanError` unless ``value`` is in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise AdversaryPlanError(
            f"{name} must be a fraction in [0, 1], got {value}"
        )


@dataclass(frozen=True, slots=True)
class AdversaryPlan:
    """Seeded, declarative description of one Byzantine environment.

    Parameters
    ----------
    seed:
        Root seed of the engine's decision streams (attacker drafting,
        accusation targets, defense audit sampling).  Independent of the
        scenario seed so the same attack can replay against different
        workloads and vice versa.
    fraction:
        Fraction of the alive node set drafted as attackers when the
        engine first arms (``round(fraction * len(alive))`` nodes drawn
        by seeded permutation).  Explicitly ``assignments``-listed nodes
        are attackers on top of (and excluded from) the draft pool.
    behaviors:
        The behavior pool drafted attackers draw from; must be a
        non-empty subset of :data:`BEHAVIORS`.
    assignments:
        Explicit ``(node_index, behavior)`` pairs, for tests that need a
        specific node to misbehave in a specific way.
    defense:
        Whether the :class:`~repro.adversary.trust.TrustedAggregation`
        defense is armed.  Off, lies flow into the aggregate unchecked
        (the damage baseline the ``byzantine`` experiment measures
        against).
    start_round:
        First balancing round (0-based) in which attackers act.  Before
        it the plan is armed but dormant — used to pin the
        zero-overhead-when-clean property: a dormant plan must leave
        every round digest byte-identical to a run with no plan at all.
    under_factor:
        Load multiplier for under-reporters (in ``(0, 1]``).
    over_factor:
        Load multiplier for over-reporters (``>= 1``).
    inflate_factor:
        Capacity multiplier for capacity inflators (``>= 1``).
    """

    seed: int = 0
    fraction: float = 0.0
    behaviors: tuple[str, ...] = BEHAVIORS
    assignments: tuple[tuple[int, str], ...] = ()
    defense: bool = True
    start_round: int = 0
    under_factor: float = 0.25
    over_factor: float = 4.0
    inflate_factor: float = 8.0

    def __post_init__(self) -> None:
        """Validate every knob; raises :class:`AdversaryPlanError`."""
        _check_fraction("fraction", self.fraction)
        if not self.behaviors:
            raise AdversaryPlanError("behaviors must be non-empty")
        for behavior in self.behaviors:
            if behavior not in BEHAVIORS:
                raise AdversaryPlanError(
                    f"unknown behavior {behavior!r}; expected one of "
                    f"{', '.join(BEHAVIORS)}"
                )
        seen: set[int] = set()
        for index, behavior in self.assignments:
            if index < 0:
                raise AdversaryPlanError(
                    f"node index must be >= 0, got {index}"
                )
            if index in seen:
                raise AdversaryPlanError(
                    f"node index {index} assigned two behaviors"
                )
            seen.add(index)
            if behavior not in BEHAVIORS:
                raise AdversaryPlanError(
                    f"unknown behavior {behavior!r} for node {index}; "
                    f"expected one of {', '.join(BEHAVIORS)}"
                )
        if self.start_round < 0:
            raise AdversaryPlanError(
                f"start_round must be >= 0, got {self.start_round}"
            )
        if not 0.0 < self.under_factor <= 1.0:
            raise AdversaryPlanError(
                f"under_factor must be in (0, 1], got {self.under_factor}"
            )
        if self.over_factor < 1.0:
            raise AdversaryPlanError(
                f"over_factor must be >= 1, got {self.over_factor}"
            )
        if self.inflate_factor < 1.0:
            raise AdversaryPlanError(
                f"inflate_factor must be >= 1, got {self.inflate_factor}"
            )

    @property
    def is_null(self) -> bool:
        """Whether this plan fields no attackers (the Byzantine-free world)."""
        return self.fraction == 0 and not self.assignments


#: The attacker-free environment: attach it anywhere a plan is accepted
#: and the run keeps the exact clean fast paths (no engine, no defense).
NULL_ADVERSARY = AdversaryPlan()
