"""The seeded decision engine that turns an :class:`AdversaryPlan` into lies.

An :class:`AdversaryEngine` owns one independent random stream per
decision channel — attacker drafting, accusation targeting, and the
defense's witness-audit sampling — all spawned from ``plan.seed`` via
the SeedSequence protocol, so the attack history on one channel is
unaffected by traffic on another and the whole Byzantine run is a pure
function of the plan.  Every action that fires (a lying report, a
reneged transfer, a false accusation) is appended to
:attr:`AdversaryEngine.log`, mirrored to the observability layer
(``adversary.actions`` counter, per-behavior counters, one
``adversary.act`` trace event), and hashed by
:meth:`AdversaryEngine.signature` so tests can assert two runs mounted
the *identical* attack byte for byte.

Mirroring :class:`~repro.faults.FaultInjector`, the engine only ever
*decides*; acting on a decision (substituting the lied report, rolling
back the reneged transfer, suppressing the accused report) stays with
the protocol code in :mod:`repro.core`, which keeps this package free
of DHT dependencies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.adversary.plan import (
    ACCUSE,
    BEHAVIORS,
    INFLATE_CAPACITY,
    OSCILLATE,
    OVER_REPORT,
    RENEGE,
    UNDER_REPORT,
    AdversaryPlan,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer
from repro.util.rng import ensure_rng, spawn_rngs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adversary.stats import AdversaryRoundStats


@dataclass(frozen=True, slots=True)
class AdversaryAction:
    """One Byzantine action that actually fired, in action order.

    ``seq`` totals the engine's history; ``behavior`` is the acting
    node's model (one of :data:`~repro.adversary.plan.BEHAVIORS`);
    ``node`` the attacker's index; ``subject`` identifies what the
    action hit (the lied round, the reneged virtual server, the accused
    victim).
    """

    seq: int
    behavior: str
    node: int
    subject: str

    def key(self) -> str:
        """Canonical string identity (the unit of the log signature)."""
        return f"{self.seq}:{self.behavior}:{self.node}:{self.subject}"


class AdversaryEngine:
    """Draws seeded Byzantine decisions for one :class:`AdversaryPlan`.

    Parameters
    ----------
    plan:
        The declarative adversary model; ``plan.seed`` roots every
        decision stream.
    tracer:
        Structured tracer for ``adversary.act`` events; defaults to the
        process-wide one.
    metrics:
        Registry accumulating ``adversary.*`` counters; defaults to the
        process-wide one (``None`` = off).
    """

    def __init__(
        self,
        plan: AdversaryPlan,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Spawn the per-channel decision streams; see the class docstring."""
        self.plan = plan
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()
        # SeedSequence spawning is prefix-stable: appending streams later
        # will leave these three byte-identical for existing plans.
        (
            self._assign_rng,
            self._accuse_rng,
            self._audit_rng,
        ) = spawn_rngs(ensure_rng(plan.seed), 3)
        self.log: list[AdversaryAction] = []
        self._behavior_of: dict[int, str] | None = None
        self._accused: dict[int, int] = {}
        self._reneged: list[tuple[int, int]] = []
        self._current_round = -1

    # -- bookkeeping -----------------------------------------------------
    def _record(self, behavior: str, node: int, subject: str) -> None:
        action = AdversaryAction(
            seq=len(self.log), behavior=behavior, node=node, subject=subject
        )
        self.log.append(action)
        if self.metrics is not None:
            self.metrics.counter("adversary.actions").inc()
            self.metrics.counter(f"adversary.{behavior}").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "adversary.act",
                seq=action.seq,
                behavior=behavior,
                node=node,
                subject=subject,
            )

    @property
    def acted(self) -> int:
        """Total Byzantine actions fired so far."""
        return len(self.log)

    @property
    def audit_rng(self) -> np.random.Generator:
        """The defense's witness-audit sampling stream.

        Owned by the engine (it is spawned from ``plan.seed`` alongside
        the attack streams) but consumed by
        :class:`~repro.adversary.trust.TrustedAggregation`, so a
        snapshot of the engine captures the complete adversarial RNG
        state in one place.
        """
        return self._audit_rng

    def signature(self) -> str:
        """SHA-256 over the ordered action log (reproducibility witness).

        Empty string while no action has fired, so an armed-but-dormant
        plan leaves report digests identical to a plan-free run.
        """
        if not self.log:
            return ""
        digest = hashlib.sha256()
        for action in self.log:
            digest.update(action.key().encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- round lifecycle -------------------------------------------------
    def _arm(self, alive_indices: Sequence[int]) -> None:
        """Draft the attacker set (first round only; the set is sticky)."""
        behavior_of = {
            int(index): behavior for index, behavior in self.plan.assignments
        }
        pool = [
            int(i) for i in sorted(alive_indices) if int(i) not in behavior_of
        ]
        count = min(
            len(pool), int(round(self.plan.fraction * len(alive_indices)))
        )
        if count > 0:
            perm = self._assign_rng.permutation(len(pool))
            for slot in range(count):
                node = pool[int(perm[slot])]
                behavior = self.plan.behaviors[
                    int(self._assign_rng.integers(len(self.plan.behaviors)))
                ]
                behavior_of[node] = behavior
        self._behavior_of = behavior_of

    def begin_round(
        self, round_index: int, alive_indices: Sequence[int]
    ) -> None:
        """Arm (first call), advance the round cursor, draw accusations.

        Accusation victims are drawn from the accuse stream for *every*
        accuser regardless of quarantine state, so stream consumption is
        independent of defense decisions; the defense filters
        quarantined accusers at use time instead.
        """
        self._current_round = round_index
        if self._behavior_of is None:
            self._arm(alive_indices)
        self._accused = {}
        self._reneged = []
        if not self.active:
            return
        assert self._behavior_of is not None
        accusers = sorted(
            int(i)
            for i in alive_indices
            if self._behavior_of.get(int(i)) == ACCUSE
        )
        honest = [
            int(i) for i in sorted(alive_indices) if int(i) not in self._behavior_of
        ]
        for accuser in accusers:
            if not honest:
                break
            victim = honest[int(self._accuse_rng.integers(len(honest)))]
            self._accused[victim] = accuser
            self._record(ACCUSE, accuser, f"victim={victim}")

    @property
    def active(self) -> bool:
        """Whether attackers act this round (armed and past ``start_round``)."""
        return (
            self._behavior_of is not None
            and bool(self._behavior_of)
            and self._current_round >= self.plan.start_round
        )

    @property
    def current_round(self) -> int:
        """The round index the engine is currently armed for."""
        return self._current_round

    # -- attacker identity -----------------------------------------------
    def behavior_of(self, node_index: int) -> str | None:
        """The node's active behavior model, or ``None`` for honest/dormant."""
        if not self.active:
            return None
        assert self._behavior_of is not None
        return self._behavior_of.get(node_index)

    def is_attacker(self, node_index: int) -> bool:
        """Whether the node is an active attacker this round."""
        return self.behavior_of(node_index) is not None

    @property
    def attacker_indices(self) -> tuple[int, ...]:
        """Sorted indices of the drafted attacker set (empty until armed)."""
        if self._behavior_of is None:
            return ()
        return tuple(sorted(self._behavior_of))

    @property
    def active_attackers(self) -> int:
        """Number of attackers acting this round."""
        return len(self._behavior_of or ()) if self.active else 0

    # -- report channel --------------------------------------------------
    def lie(
        self,
        node_index: int,
        load: float,
        capacity: float,
        min_vs: float,
        stats: "AdversaryRoundStats | None" = None,
    ) -> tuple[float, float, float]:
        """The node's claimed ``<L, C, L_min>`` triple for this round.

        Honest nodes, dormant rounds, and behaviors that do not lie in
        reports (:data:`~repro.adversary.plan.RENEGE`,
        :data:`~repro.adversary.plan.ACCUSE`) return the truth.  Load
        lies clamp ``L_min`` to the claimed load so the triple stays
        internally consistent (plausible to the baseline sanity
        defense).  ``stats`` receives per-family lie counts.
        """
        behavior = self.behavior_of(node_index)
        if behavior is None or behavior in (RENEGE, ACCUSE):
            return load, capacity, min_vs
        self._record(behavior, node_index, f"round={self._current_round}")
        if behavior == INFLATE_CAPACITY:  # lint: disable=no-float-equality
            if stats is not None:
                stats.lies_capacity += 1
            return load, capacity * self.plan.inflate_factor, min_vs
        if behavior == UNDER_REPORT:
            claimed_load = load * self.plan.under_factor
        elif behavior == OVER_REPORT:
            claimed_load = load * self.plan.over_factor
        else:  # OSCILLATE: thrash between the two extremes
            factor = (
                self.plan.over_factor
                if self._current_round % 2 == 0
                else self.plan.under_factor
            )
            claimed_load = load * factor
        if stats is not None:
            if behavior == OSCILLATE:
                stats.lies_oscillate += 1
            else:
                stats.lies_load += 1
        return claimed_load, capacity, min(min_vs, claimed_load)

    # -- transfer channel ------------------------------------------------
    def renege(self, source_index: int, vs_id: int) -> bool:
        """Whether the source prepares this transfer and never delivers.

        A reneged transfer is rolled back by the two-phase VST commit;
        the engine remembers it for the round so the defense's
        transfer-outcome accounting can charge the source.
        """
        if self.behavior_of(source_index) != RENEGE:
            return False
        self._reneged.append((source_index, vs_id))
        self._record(RENEGE, source_index, f"vs={vs_id}")
        return True

    @property
    def reneged(self) -> tuple[tuple[int, int], ...]:
        """This round's ``(source, vs_id)`` reneged transfers, in order."""
        return tuple(self._reneged)

    # -- accusation channel ----------------------------------------------
    def accuser_of(self, node_index: int) -> int | None:
        """The attacker accusing this node of being dead, or ``None``."""
        return self._accused.get(node_index)

    @property
    def accusations(self) -> int:
        """Number of accusations mounted this round."""
        return len(self._accused)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdversaryEngine(plan={self.plan!r}, acted={self.acted}, "
            f"round={self._current_round})"
        )


def ensure_engine(
    adversary: AdversaryPlan | AdversaryEngine | None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> AdversaryEngine | None:
    """Coerce a plan-or-engine argument into an engine (or ``None``).

    The same convention as :func:`repro.faults.ensure_injector`: pass a
    plan for the common case, pass a pre-built engine to share one
    attack history across components.  A null plan yields ``None`` so
    Byzantine-free runs keep the exact clean fast paths.
    """
    if adversary is None:
        return None
    if isinstance(adversary, AdversaryEngine):
        return adversary
    if adversary.is_null:
        return None
    return AdversaryEngine(adversary, tracer=tracer, metrics=metrics)


__all__ = [
    "BEHAVIORS",
    "AdversaryAction",
    "AdversaryEngine",
    "ensure_engine",
]
