"""Byzantine adversaries and the trust-scored defense against them.

The next rung of the fault hierarchy above :mod:`repro.faults`
(crash/omission/partition faults): nodes that *lie*.  The package
mirrors the faults architecture —

* :class:`AdversaryPlan` is the frozen, validated, seeded declaration
  of the Byzantine environment (attacker fraction, behavior models,
  defense arming);
* :class:`AdversaryEngine` draws every attack decision from dedicated
  ``SeedSequence`` streams rooted at ``plan.seed``, logs every action
  and hashes the log (:meth:`AdversaryEngine.signature`) so two runs
  can be proven to have mounted the identical attack;
* :class:`TrustedAggregation` is the defense: witness audits, EWMA
  plausibility envelopes and transfer-outcome accounting feeding
  per-node trust scores with hysteretic quarantine/probation;
* :class:`AdversaryRoundStats` rides each
  :class:`~repro.core.report.BalanceReport` and attributes damage to
  attackers.

Attach a plan via ``LoadBalancer(..., adversary=plan)``; a null plan
(:data:`NULL_ADVERSARY`) keeps the exact clean fast paths.  See
``docs/adversary.md`` for the threat models, the defense mechanics and
the determinism contract.
"""

from repro.adversary.engine import (
    AdversaryAction,
    AdversaryEngine,
    ensure_engine,
)
from repro.adversary.plan import (
    ACCUSE,
    BEHAVIORS,
    INFLATE_CAPACITY,
    NULL_ADVERSARY,
    OSCILLATE,
    OVER_REPORT,
    RENEGE,
    UNDER_REPORT,
    AdversaryPlan,
)
from repro.adversary.stats import AdversaryRoundStats
from repro.adversary.trust import TrustedAggregation

__all__ = [
    "ACCUSE",
    "BEHAVIORS",
    "INFLATE_CAPACITY",
    "NULL_ADVERSARY",
    "OSCILLATE",
    "OVER_REPORT",
    "RENEGE",
    "UNDER_REPORT",
    "AdversaryAction",
    "AdversaryEngine",
    "AdversaryPlan",
    "AdversaryRoundStats",
    "TrustedAggregation",
    "ensure_engine",
]
