"""repro: proximity-aware load balancing for structured P2P systems.

A full reproduction of Zhu & Hu, "Towards Efficient Load Balancing in
Structured P2P Systems" (2004): a Chord DHT simulator with virtual
servers, the distributed K-nary aggregation tree, the four-phase
proximity-aware load balancer (LBI aggregation, classification, virtual
server assignment, virtual server transfer), landmark + Hilbert-curve
proximity mapping, GT-ITM-style transit-stub topologies, the paper's
workload models, and the complete experiment suite.

Quickstart::

    from repro import (
        BalancerConfig, LoadBalancer, GaussianLoadModel, build_scenario
    )

    scenario = build_scenario(GaussianLoadModel(mu=1e6, sigma=2e3),
                              num_nodes=512, rng=42)
    balancer = LoadBalancer(scenario.ring,
                            BalancerConfig(proximity_mode="ignorant",
                                           epsilon=0.05),
                            rng=7)
    report = balancer.run_round()
    print(report.summary_text())
"""

from repro.constants import (
    DEFAULT_NUM_LANDMARKS,
    DEFAULT_NUM_NODES,
    DEFAULT_RENDEZVOUS_THRESHOLD,
    DEFAULT_TREE_DEGREE,
    DEFAULT_VS_PER_NODE,
    ID_BITS,
)
from repro.core import (
    BalanceReport,
    BalancerConfig,
    LoadBalancer,
    NodeClass,
    SystemLBI,
)
from repro.dht import ChordRing, PhysicalNode, VirtualServer
from repro.idspace import IdentifierSpace, Region
from repro.ktree import KnaryTree, KTNode
from repro.proximity import HilbertCurve, ProximityMapper
from repro.topology import (
    DistanceOracle,
    Topology,
    TransitStubParams,
    TS5K_LARGE,
    TS5K_SMALL,
    generate_transit_stub,
)
from repro.workloads import (
    GaussianLoadModel,
    GnutellaCapacityProfile,
    ParetoLoadModel,
    Scenario,
    build_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # constants
    "ID_BITS",
    "DEFAULT_NUM_NODES",
    "DEFAULT_VS_PER_NODE",
    "DEFAULT_TREE_DEGREE",
    "DEFAULT_RENDEZVOUS_THRESHOLD",
    "DEFAULT_NUM_LANDMARKS",
    # identifier space
    "IdentifierSpace",
    "Region",
    # DHT
    "ChordRing",
    "PhysicalNode",
    "VirtualServer",
    # tree
    "KnaryTree",
    "KTNode",
    # proximity
    "HilbertCurve",
    "ProximityMapper",
    # topology
    "Topology",
    "TransitStubParams",
    "TS5K_LARGE",
    "TS5K_SMALL",
    "generate_transit_stub",
    "DistanceOracle",
    # core
    "LoadBalancer",
    "BalancerConfig",
    "BalanceReport",
    "NodeClass",
    "SystemLBI",
    # workloads
    "GaussianLoadModel",
    "ParetoLoadModel",
    "GnutellaCapacityProfile",
    "Scenario",
    "build_scenario",
]
