"""Baseline load-balancing schemes the paper compares against or builds on.

* :mod:`repro.baselines.proximity_ignorant` — the paper's own baseline:
  identical machinery with random identifier-space placement of VSA
  information (convenience wrapper; the mode flag on
  :class:`~repro.core.config.BalancerConfig` does the same).
* :mod:`repro.baselines.rao` — the three virtual-server schemes of Rao
  et al. (one-to-one, one-to-many, many-to-many), which transfer load
  without any proximity information.
* :mod:`repro.baselines.cfs` — CFS-style shedding: an overloaded node
  simply *removes* virtual servers (their regions are absorbed by ring
  successors), which can push the successors over their own targets —
  the "load thrashing" failure mode the paper cites.
"""

from repro.baselines.proximity_ignorant import run_proximity_ignorant
from repro.baselines.rao import (
    RaoResult,
    run_many_to_many,
    run_one_to_many,
    run_one_to_one,
)
from repro.baselines.cfs import CFSResult, run_cfs_shedding

__all__ = [
    "run_proximity_ignorant",
    "RaoResult",
    "run_one_to_one",
    "run_one_to_many",
    "run_many_to_many",
    "CFSResult",
    "run_cfs_shedding",
]
