"""The three virtual-server load-balancing schemes of Rao et al.

Rao, Lakshminarayanan, Surana, Karp, Stoica — "Load Balancing in
Structured P2P Systems" (IPTPS 2003), reference [5] of the paper.  All
three move load heavy -> light in units of virtual servers but differ in
how heavy and light nodes find each other:

* **one-to-one**: each light node periodically probes a random ring
  position; if the node owning it is heavy, one virtual server moves.
* **one-to-many**: heavy nodes contact one of a set of *directories*
  where a random subset of light nodes has registered; the directory
  picks, for each heavy node, the best-fitting light node.
* **many-to-many**: a logically global rendezvous collects *all* heavy
  and light information and computes assignments (the strongest
  scheme — closest to the paper's tree-based VSA, but with no proximity
  information and no distributed structure).

None of them uses proximity information, so their transfer distances
match the proximity-ignorant distribution; they serve as both
correctness anchors (they should balance about as well as the paper's
scheme) and ablation baselines for transfer cost and probe overhead.

The implementations share this module's model of the paper's
classification rules so comparisons are apples-to-apples: a node is
heavy/light against the same target ``T_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classification import classify_all
from repro.core.lbi import direct_system_lbi
from repro.core.records import NodeClass
from repro.core.selection import select_shed_subset
from repro.dht.chord import ChordRing
from repro.dht.node import PhysicalNode
from repro.exceptions import BalancerError
from repro.topology.routing import DistanceOracle
from repro.util.rng import ensure_rng
from repro.util.sortedlist import SortedKeyList


@dataclass
class RaoResult:
    """Outcome of one Rao et al. balancing run."""

    scheme: str
    transfers: int = 0
    moved_load: float = 0.0
    probes: int = 0
    heavy_before: int = 0
    heavy_after: int = 0
    distances: list[float] = field(default_factory=list)
    loads_moved: list[float] = field(default_factory=list)

    def moved_load_within(self, hops: float) -> float:
        if not self.distances:
            return 0.0
        d = np.asarray(self.distances)
        w = np.asarray(self.loads_moved)
        total = w.sum()
        return float(w[d <= hops].sum() / total) if total else 0.0


def _distance(oracle: DistanceOracle | None, a: PhysicalNode, b: PhysicalNode) -> float:
    if oracle is None or a.site is None or b.site is None:
        return float("nan")
    return oracle.distance(a.site, b.site)


def _transfer_best_vs(
    ring: ChordRing,
    heavy: PhysicalNode,
    light: PhysicalNode,
    target_heavy: float,
    target_light: float,
    oracle: DistanceOracle | None,
    result: RaoResult,
) -> bool:
    """Move the best single VS heavy->light without overloading the light.

    Rao et al.'s rule: transfer the heaviest virtual server that fits the
    light node's spare capacity; prefer one whose removal makes the heavy
    node non-heavy.  Returns whether a transfer happened.
    """
    spare = target_light - light.load
    candidates = [vs for vs in heavy.virtual_servers if vs.load <= spare]
    if not candidates:
        return False
    candidates.sort(key=lambda vs: vs.load)
    excess = heavy.load - target_heavy
    # Smallest VS that alone removes the excess, else the largest fitting.
    chosen = next((vs for vs in candidates if vs.load >= excess), candidates[-1])
    if chosen.load <= 0:
        return False
    ring.transfer_virtual_server(chosen, light)
    result.transfers += 1
    result.moved_load += chosen.load
    dist = _distance(oracle, heavy, light)
    if dist == dist:  # not NaN
        result.distances.append(dist)
        result.loads_moved.append(chosen.load)
    return True


def run_one_to_one(
    ring: ChordRing,
    epsilon: float = 0.0,
    probes_per_light: int = 4,
    oracle: DistanceOracle | None = None,
    rng: int | None | np.random.Generator = None,
) -> RaoResult:
    """One-to-one scheme: light nodes probe random ring positions.

    Each light node performs up to ``probes_per_light`` random lookups;
    when a probe lands on a heavy node, one virtual server moves (if one
    fits) and the light node stops probing.
    """
    gen = ensure_rng(rng)
    result = RaoResult(scheme="one-to-one")
    lbi = direct_system_lbi(ring.nodes)
    cls = classify_all(ring.alive_nodes, lbi, epsilon)
    result.heavy_before = len(cls.heavy)
    node_by_index = {n.index: n for n in ring.nodes}
    heavy_set = set(cls.heavy)
    for light_idx in gen.permutation(cls.light).tolist():
        light = node_by_index[light_idx]
        for _ in range(probes_per_light):
            result.probes += 1
            key = int(gen.integers(0, ring.space.size))
            owner = ring.successor(key).owner
            if owner.index in heavy_set:
                moved = _transfer_best_vs(
                    ring,
                    owner,
                    light,
                    cls.targets[owner.index],
                    cls.targets[light_idx],
                    oracle,
                    result,
                )
                if moved:
                    if owner.load <= cls.targets[owner.index]:
                        heavy_set.discard(owner.index)
                    break
    cls_after = classify_all(ring.alive_nodes, lbi, epsilon)
    result.heavy_after = len(cls_after.heavy)
    return result


def run_one_to_many(
    ring: ChordRing,
    epsilon: float = 0.0,
    num_directories: int = 16,
    oracle: DistanceOracle | None = None,
    rng: int | None | np.random.Generator = None,
) -> RaoResult:
    """One-to-many scheme: light nodes register with random directories.

    Each heavy node queries the directory it hashes to and is matched to
    the registered light node that best fits its heaviest shed candidate.
    """
    if num_directories < 1:
        raise BalancerError("need at least one directory")
    gen = ensure_rng(rng)
    result = RaoResult(scheme="one-to-many")
    lbi = direct_system_lbi(ring.nodes)
    cls = classify_all(ring.alive_nodes, lbi, epsilon)
    result.heavy_before = len(cls.heavy)
    node_by_index = {n.index: n for n in ring.nodes}

    directories: list[list[int]] = [[] for _ in range(num_directories)]
    for light_idx in cls.light:
        directories[int(gen.integers(num_directories))].append(light_idx)

    for heavy_idx in gen.permutation(cls.heavy).tolist():
        heavy = node_by_index[heavy_idx]
        directory = directories[int(gen.integers(num_directories))]
        result.probes += 1
        # Retry within the directory until the node is no longer heavy or
        # nothing fits.
        progress = True
        while heavy.load > cls.targets[heavy_idx] and progress:
            progress = False
            best_light = None
            best_spare = np.inf
            needed = min(
                (vs.load for vs in heavy.virtual_servers if vs.load > 0),
                default=0.0,
            )
            for light_idx in directory:
                light = node_by_index[light_idx]
                spare = cls.targets[light_idx] - light.load
                if spare >= needed and spare < best_spare:
                    best_light, best_spare = light, spare
            if best_light is None:
                break
            progress = _transfer_best_vs(
                ring,
                heavy,
                best_light,
                cls.targets[heavy_idx],
                cls.targets[best_light.index],
                oracle,
                result,
            )
    cls_after = classify_all(ring.alive_nodes, lbi, epsilon)
    result.heavy_after = len(cls_after.heavy)
    return result


def run_many_to_many(
    ring: ChordRing,
    epsilon: float = 0.0,
    selection_policy: str = "exact",
    oracle: DistanceOracle | None = None,
    rng: int | None | np.random.Generator = None,
) -> RaoResult:
    """Many-to-many scheme: global pool of shed candidates vs light nodes.

    All heavy nodes dump their shed subsets into one pool; candidates are
    assigned best-fit in decreasing load order — equivalent to the
    paper's VSA executed entirely at the root, with no proximity input.
    """
    result = RaoResult(scheme="many-to-many")
    lbi = direct_system_lbi(ring.nodes)
    cls = classify_all(ring.alive_nodes, lbi, epsilon)
    result.heavy_before = len(cls.heavy)
    node_by_index = {n.index: n for n in ring.nodes}

    pool: list[tuple[float, int, int]] = []  # (load, vs_id, heavy_idx)
    for heavy_idx in cls.heavy:
        heavy = node_by_index[heavy_idx]
        loads = [vs.load for vs in heavy.virtual_servers]
        shed = select_shed_subset(
            loads, heavy.load - cls.targets[heavy_idx], policy=selection_policy,
            keep_at_least=0,
        )
        for i in shed:
            pool.append((loads[i], heavy.virtual_servers[i].vs_id, heavy_idx))
    pool.sort(reverse=True)

    spare_list: SortedKeyList[tuple[float, int]] = SortedKeyList(
        [
            (cls.targets[light_idx] - node_by_index[light_idx].load, light_idx)
            for light_idx in cls.light
            if cls.targets[light_idx] - node_by_index[light_idx].load > 0
        ],
        key=lambda t: t[0],
    )
    for load, vs_id, heavy_idx in pool:
        idx = spare_list.index_first_at_least(load)
        if idx is None:
            continue
        spare, light_idx = spare_list.pop_at(idx)
        light = node_by_index[light_idx]
        ring.transfer_virtual_server(ring.vs(vs_id), light)
        result.transfers += 1
        result.moved_load += load
        dist = _distance(oracle, node_by_index[heavy_idx], light)
        if dist == dist:
            result.distances.append(dist)
            result.loads_moved.append(load)
        remainder = spare - load
        if remainder > 0:
            spare_list.add((remainder, light_idx))

    cls_after = classify_all(ring.alive_nodes, lbi, epsilon)
    result.heavy_after = len(cls_after.heavy)
    return result
