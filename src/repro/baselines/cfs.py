"""CFS-style load shedding and its thrashing failure mode.

CFS (Dabek et al., SOSP 2001) hosts virtual servers in proportion to
node capacity; an overloaded node sheds load by simply *removing* some
of its virtual servers.  The removed regions are absorbed by their ring
successors — which may push *those* nodes over their targets.  The paper
cites this cascading behaviour ("load thrashing") as the motivation for
assignment-based transfer instead of removal.

:func:`run_cfs_shedding` reproduces the mechanism so the thrashing can
be measured: it iterates shed rounds and records how many *new* heavy
nodes each round of removals creates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classification import classify_all
from repro.core.lbi import direct_system_lbi
from repro.core.records import NodeClass
from repro.core.selection import select_shed_subset
from repro.dht.chord import ChordRing
from repro.util.rng import ensure_rng


@dataclass
class CFSResult:
    """Outcome of an iterated CFS shedding run."""

    rounds: int = 0
    removals: int = 0
    shed_load: float = 0.0
    heavy_before: int = 0
    heavy_after: int = 0
    newly_heavy_per_round: list[int] = field(default_factory=list)

    @property
    def total_thrash(self) -> int:
        """Nodes pushed heavy by other nodes' shedding across all rounds."""
        return sum(self.newly_heavy_per_round)


def run_cfs_shedding(
    ring: ChordRing,
    epsilon: float = 0.0,
    max_rounds: int = 10,
    rng: int | None | np.random.Generator = None,
) -> CFSResult:
    """Iterate CFS-style shedding until stable or ``max_rounds``.

    Each round, every currently-heavy node removes its cheapest subset of
    virtual servers covering its excess; each removed virtual server's
    load lands on its ring successor.  Nodes that were non-heavy and
    become heavy because of absorbed load are counted as thrash.

    The ring keeps at least one virtual server overall; a node shedding
    its last virtual server is allowed (it simply leaves the ring's
    ownership map), matching CFS semantics.
    """
    ensure_rng(rng)  # reserved for future stochastic variants; validates input
    result = CFSResult()
    lbi = direct_system_lbi(ring.nodes)
    cls = classify_all(ring.alive_nodes, lbi, epsilon)
    result.heavy_before = len(cls.heavy)
    node_by_index = {n.index: n for n in ring.nodes}
    heavy_now = set(cls.heavy)
    ever_heavy = set(cls.heavy)

    for _ in range(max_rounds):
        if not heavy_now:
            break
        result.rounds += 1
        affected: set[int] = set()
        for idx in sorted(heavy_now):
            node = node_by_index[idx]
            target = cls.targets[idx]
            loads = [vs.load for vs in node.virtual_servers]
            shed = select_shed_subset(loads, node.load - target, keep_at_least=0)
            if not shed:
                continue
            # Removal order matters: removing one VS changes successors of
            # the rest; capture objects first.
            to_remove = [node.virtual_servers[i] for i in shed]
            for vs in to_remove:
                if ring.num_virtual_servers <= 1:
                    break
                load = vs.load
                ring.remove_virtual_server(vs)
                absorber = ring.successor(vs.vs_id)
                absorber.load += load
                affected.add(absorber.owner.index)
                result.removals += 1
                result.shed_load += load
        # Reclassify: which non-heavy nodes were pushed over target?
        cls_now = classify_all(ring.alive_nodes, lbi, epsilon)
        new_heavy = {
            i
            for i, c in cls_now.classes.items()
            if c is NodeClass.HEAVY and i not in ever_heavy
        }
        result.newly_heavy_per_round.append(len(new_heavy))
        ever_heavy |= new_heavy
        heavy_now = {i for i, c in cls_now.classes.items() if c is NodeClass.HEAVY}

    cls_final = classify_all(ring.alive_nodes, lbi, epsilon)
    result.heavy_after = sum(
        1 for c in cls_final.classes.values() if c is NodeClass.HEAVY
    )
    return result
