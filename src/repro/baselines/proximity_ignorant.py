"""The paper's proximity-ignorant baseline.

This is the identical four-phase protocol with the single difference
that VSA information is published at a random ring position (one of the
node's own virtual servers) instead of the Hilbert key.  The paper's
figures 7 and 8 compare exactly these two systems.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.report import BalanceReport
from repro.dht.chord import ChordRing
from repro.topology.graph import Topology
from repro.topology.routing import DistanceOracle


def run_proximity_ignorant(
    ring: ChordRing,
    config: BalancerConfig | None = None,
    topology: Topology | None = None,
    oracle: DistanceOracle | None = None,
    rng: int | None | np.random.Generator = None,
) -> BalanceReport:
    """One proximity-ignorant balancing round (baseline of figs. 7/8).

    Accepts the same arguments as :class:`~repro.core.balancer.LoadBalancer`
    but forces ``proximity_mode="ignorant"``; a topology may still be
    attached so transfers carry distances for the comparison.
    """
    cfg = config if config is not None else BalancerConfig()
    cfg = replace(cfg, proximity_mode="ignorant")
    balancer = LoadBalancer(ring, cfg, topology=topology, oracle=oracle, rng=rng)
    return balancer.run_round()
