"""Paper-level default constants.

These mirror the experiment setup of Section 5 of Zhu & Hu (2004):

* 32-bit Chord identifier space,
* 4096 physical nodes, 5 virtual servers per node initially,
* K-nary tree of degree 2 (8 also evaluated),
* rendezvous list-length threshold of 30,
* 15 landmark nodes,
* Gnutella-like capacity profile,
* Pareto shape 1.5 for the heavy-tailed load distribution.
"""

from __future__ import annotations

#: Number of bits in the Chord identifier space used by the paper.
ID_BITS: int = 32

#: Default number of physical DHT nodes in the paper's experiments.
DEFAULT_NUM_NODES: int = 4096

#: Default number of virtual servers each physical node starts with.
DEFAULT_VS_PER_NODE: int = 5

#: Default degree of the K-nary aggregation tree.
DEFAULT_TREE_DEGREE: int = 2

#: Alternative tree degree evaluated by the paper.
ALT_TREE_DEGREE: int = 8

#: Rendezvous threshold: a non-root KT node pairs assignments only once the
#: combined length of its heavy and light lists reaches this value.
DEFAULT_RENDEZVOUS_THRESHOLD: int = 30

#: Number of landmark nodes used for landmark clustering.
DEFAULT_NUM_LANDMARKS: int = 15

#: Shape parameter of the Pareto load distribution.
PARETO_SHAPE: float = 1.5

#: Latency units per interdomain hop in the transit-stub topologies.
INTERDOMAIN_HOP_COST: int = 3

#: Latency units per intradomain hop in the transit-stub topologies.
INTRADOMAIN_HOP_COST: int = 1

#: Gnutella-like capacity profile: ``capacity -> probability``.
GNUTELLA_CAPACITY_PROFILE: dict[float, float] = {
    1.0: 0.20,
    10.0: 0.45,
    100.0: 0.30,
    1_000.0: 0.049,
    10_000.0: 0.001,
}

#: Default slack parameter epsilon in the target load
#: ``T_i = (1 + epsilon) * (L / C) * C_i``.  The paper notes that ideally
#: epsilon is 0; a small positive value trades balance quality for less
#: load movement.
DEFAULT_EPSILON: float = 0.0
