"""The epoch state machine: activate partitions, run degraded rounds, heal.

A :class:`MembershipManager` sits between the balancer and the fault
layer.  Each round it is consulted once (:meth:`MembershipManager.begin_round`):
it heals any partition whose bounded duration expired, activates any
:class:`~repro.faults.FaultPlan` partition scheduled for this round, and
hands the balancer either a :class:`MembershipView` (run per-component
degraded rounds) or a pending mid-round spec (cut the VST batch at a
seeded slot).

Epochs are monotone view numbers: activation bumps the epoch (each
component runs under the new partitioned view) and the heal bumps it
again (the reunified view).  LBI reports are tagged with the epoch they
were produced under, which is what lets the aggregate sanity defense in
:mod:`repro.core.lbi` reject cross-epoch state.

The heal protocol reconciles every transfer caught in flight by a
mid-round cut: **commit iff both endpoints are alive**, roll back (with
successor rescue) otherwise, then assert global load conservation —
node totals plus in-flight load before the heal must equal node totals
after it.  Everything here is deterministic: component assignment rides
the injector's seeded partition stream, activation and heal events land
in the injector's signed fault log, and suspended transfers are
reconciled in suspension order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.records import Assignment, assert_loads_conserved
from repro.core.vst import TransferTransaction
from repro.dht.chord import ChordRing
from repro.exceptions import DHTError
from repro.faults.injector import FaultInjector
from repro.faults.plan import PartitionSpec
from repro.faults.stats import FaultRoundStats
from repro.membership.views import ComponentRingView
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (recovery -> core)
    from repro.recovery.journal import TransferJournal


@dataclass(frozen=True, slots=True)
class MembershipView:
    """One epoch's component structure: who can talk to whom.

    ``components`` holds sorted node-index tuples, themselves ordered
    by smallest member index, so iterating a view is deterministic.
    An absent partition is represented by ``None`` upstream, never by a
    single-component view.
    """

    epoch: int
    components: tuple[tuple[int, ...], ...]

    def component_of(self, node_index: int) -> int:
        """Component id of ``node_index`` (unlisted nodes join 0)."""
        for cid, members in enumerate(self.components):
            if node_index in members:
                return cid
        return 0

    def assignment(self) -> dict[int, int]:
        """The node-index → component map (for the injector's gate)."""
        return {
            index: cid
            for cid, members in enumerate(self.components)
            for index in members
        }


class MembershipManager:
    """Drives partition activation, in-flight suspension and the heal.

    Parameters
    ----------
    ring:
        The whole (base) ring; component views are derived from it.
    injector:
        The fault injector whose partition stream seeds component
        assignment and whose signed log records activation/heal.
    tracer:
        Structured tracer for ``membership.*`` / ``ktree.regraft``
        events; defaults to the process-wide one.
    metrics:
        Registry for the matching counters; defaults to the
        process-wide one (``None`` = off).

    The ``corrupt_heal`` attribute is a test hook: when set, the next
    heal silently drops the first suspended transfer without committing
    or rolling it back, which must trip the global conservation gate
    (:class:`~repro.exceptions.ConservationError`).
    """

    def __init__(
        self,
        ring: ChordRing,
        injector: FaultInjector,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Wire the manager to one ring + injector; see the class docstring."""
        self.ring = ring
        self.injector = injector
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()
        self.epoch = 0
        self.active: MembershipView | None = None
        self._active_spec: PartitionSpec | None = None
        self._suspended: list[tuple[TransferTransaction, Assignment]] = []
        self.corrupt_heal = False
        #: Write-ahead journal for suspension/heal transactions; wired
        #: by :meth:`repro.core.balancer.LoadBalancer.attach_journal`.
        self.journal: TransferJournal | None = None

    # ------------------------------------------------------------------
    # Round boundary
    # ------------------------------------------------------------------
    def begin_round(
        self, round_index: int, stats: FaultRoundStats
    ) -> tuple[MembershipView | None, PartitionSpec | None]:
        """Advance the state machine to ``round_index``.

        Runs the heal first if the active partition's duration expired,
        then activates any partition scheduled at this round boundary.
        Returns ``(view, pending)``: ``view`` is the active
        :class:`MembershipView` the round must run under (``None`` for
        a normal round) and ``pending`` a mid-round spec the balancer
        must activate inside this round's VST batch (``None`` if no
        mid-round cut is due).
        """
        if (
            self._active_spec is not None
            and round_index >= self._active_spec.heal_round
        ):
            self.heal(stats)
        pending: PartitionSpec | None = None
        if self.active is None:
            for spec in self.injector.plan.partitions:
                if spec.at_round != round_index:
                    continue
                if spec.mid_round:
                    pending = spec
                else:
                    self.activate(spec, stats)
                break
        stats.epoch = self.epoch
        if self.active is not None:
            stats.partition_components = len(self.active.components)
        return self.active, pending

    def activate(
        self, spec: PartitionSpec, stats: FaultRoundStats
    ) -> MembershipView | None:
        """Split the alive node set per ``spec`` and open a new epoch.

        Explicit component lists are filtered to alive nodes (unlisted
        alive nodes join component 0); seeded splits draw the injector's
        partition stream.  A degenerate outcome (fewer than two
        non-empty components) skips activation and returns ``None``.
        """
        alive = sorted(n.index for n in self.ring.alive_nodes)
        if spec.components:
            alive_set = frozenset(alive)
            listed = frozenset(i for comp in spec.components for i in comp)
            drafts = [
                [i for i in comp if i in alive_set] for comp in spec.components
            ]
            drafts[0].extend(i for i in alive if i not in listed)
            components = tuple(
                tuple(sorted(comp)) for comp in drafts if comp
            )
        else:
            components = self.injector.partition_components(
                alive, spec.num_components
            )
        if len(components) < 2:
            return None
        components = tuple(sorted(components, key=lambda c: c[0]))
        self.epoch += 1
        view = MembershipView(epoch=self.epoch, components=components)
        self.active = view
        self._active_spec = spec
        self.injector.record_partition(self.epoch, components)
        self.injector.set_partition(view.assignment())
        stats.epoch = self.epoch
        stats.partition_components = len(components)
        if self.metrics is not None:
            self.metrics.counter("membership.partition").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "membership.partition",
                epoch=self.epoch,
                components=[len(c) for c in components],
                mid_round=spec.mid_round,
            )
        return view

    # ------------------------------------------------------------------
    # In-flight suspension (mid-round cuts)
    # ------------------------------------------------------------------
    def suspend_assignment(
        self,
        ring: ChordRing,
        a: Assignment,
        skipped: list[Assignment],
        stats: FaultRoundStats,
    ) -> bool:
        """Park one cross-component assignment in the in-flight state.

        Performs the same staleness checks as the VST executor (server
        gone, endpoints changed) and collects stale assignments into
        ``skipped``; otherwise prepares a
        :class:`~repro.core.vst.TransferTransaction` — detaching the
        server — and holds it until the heal reconciles it.
        """
        node_by_index = {n.index: n for n in ring.nodes}
        source = node_by_index.get(a.candidate.node_index)
        target = node_by_index.get(a.target_node)
        try:
            vs = ring.vs(a.candidate.vs_id) if source is not None else None
        except DHTError:  # the server left the ring between VSA and VST
            vs = None
        if (
            source is None
            or target is None
            or vs is None
            or vs.owner is not source
            or not source.alive
            or not target.alive
        ):
            skipped.append(a)
            return False
        txn = TransferTransaction(ring, vs, source, target, journal=self.journal)
        txn.prepare()
        self._suspended.append((txn, a))
        stats.suspended_transfers += 1
        if self.journal is not None:
            self.journal.record(
                "suspend",
                vs=a.candidate.vs_id,
                source=a.candidate.node_index,
                target=a.target_node,
            )
        if self.tracer.enabled:
            self.tracer.event(
                "membership.suspend",
                vs_id=a.candidate.vs_id,
                source=a.candidate.node_index,
                target=a.target_node,
            )
        return True

    @property
    def in_flight_load(self) -> float:
        """Total load of suspended (detached, in-flight) virtual servers."""
        return sum(txn.vs.load for txn, _ in self._suspended)

    @property
    def suspended_count(self) -> int:
        """Number of transfers currently parked in flight."""
        return len(self._suspended)

    # ------------------------------------------------------------------
    # Heal protocol
    # ------------------------------------------------------------------
    def heal(self, stats: FaultRoundStats) -> None:
        """Reunify the ring: reconcile in-flight transfers, check conservation.

        Commits a suspended transfer iff both endpoints are still
        alive, rolls it back (with successor rescue) otherwise —
        reconciliation runs in suspension order, so the outcome is a
        pure function of the fault history.  Afterward the node-load
        total must equal the pre-heal node total plus the pre-heal
        in-flight load (:class:`~repro.exceptions.ConservationError`
        otherwise), the per-component trees are re-grafted under a new
        epoch, and the injector's partition gate is cleared.
        """
        view = self.active
        if view is None:
            return
        if self.injector.crash_due("pre-heal-commit"):
            self.injector.fire_crash("pre-heal-commit")
        nodes_before = sum(n.load for n in self.ring.nodes)
        expected = nodes_before + self.in_flight_load
        suspended = list(self._suspended)
        self._suspended.clear()
        if self.corrupt_heal and suspended:
            suspended.pop(0)
        commits = 0
        rollbacks = 0
        for txn, a in suspended:
            if txn.source.alive and txn.target.alive:
                txn.commit()
                commits += 1
            else:
                txn.rollback()
                rollbacks += 1
            if self.tracer.enabled:
                self.tracer.event(
                    "membership.reconcile",
                    vs_id=a.candidate.vs_id,
                    outcome="commit" if txn.state == "committed" else "rollback",
                )
        regrafts = len(view.components) - 1
        self.injector.record_heal(view.epoch, commits, rollbacks)
        self.injector.set_partition(None)
        self.epoch += 1
        self.active = None
        self._active_spec = None
        stats.healed_commits += commits
        stats.healed_rollbacks += rollbacks
        stats.regrafts += regrafts
        if self.metrics is not None:
            self.metrics.counter("membership.heal").inc()
            self.metrics.counter("ktree.regraft").inc(regrafts)
        if self.tracer.enabled:
            self.tracer.event(
                "ktree.regraft",
                epoch=self.epoch,
                subtrees=regrafts,
            )
            self.tracer.event(
                "membership.heal",
                epoch=self.epoch,
                commits=commits,
                rollbacks=rollbacks,
            )
        after = sum(n.load for n in self.ring.nodes)
        assert_loads_conserved(expected, after, context="membership.heal")

    # ------------------------------------------------------------------
    # Component views
    # ------------------------------------------------------------------
    def component_views(self) -> list[ComponentRingView]:
        """One :class:`ComponentRingView` per active component, in order."""
        if self.active is None:
            return []
        return [
            ComponentRingView(self.ring, members)
            for members in self.active.components
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MembershipManager(epoch={self.epoch}, "
            f"active={self.active is not None}, "
            f"suspended={len(self._suspended)})"
        )
