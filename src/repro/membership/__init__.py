"""Partition tolerance: epochs, component views, and the heal protocol.

The paper's reliability story (Section 3.1.1) covers individual node
failures; this package covers the failure class above it — a **network
partition** that splits the ring into components which cannot exchange
protocol messages.  Three pieces make a partitioned system keep its
invariants:

* :class:`PartitionSpec` — a seeded, declarative partition event on a
  :class:`~repro.faults.FaultPlan`: split the node set into two or more
  components at a round boundary (or mid-round, during the VST batch)
  and heal after a bounded number of rounds.
* :class:`ComponentRingView` — a read-consistent Chord facade over one
  component: regions re-tile over the component's virtual servers, so
  each side of the split runs an internally consistent degraded round
  over its own epoch-tagged K-nary tree.
* :class:`MembershipManager` — the epoch state machine.  It activates
  partitions, suspends :class:`~repro.core.vst.TransferTransaction`\\ s
  caught in flight by a mid-round split, and runs the deterministic
  heal protocol: commit an in-flight transfer iff both endpoints are
  alive, roll it back (with successor rescue) otherwise, then assert
  load conservation globally.

Determinism contract: epoch numbers, component assignment, suspension
and the heal outcome are pure functions of ``(scenario seed, plan)`` —
the partition decision streams ride on the
:class:`~repro.faults.FaultInjector`'s seeded channels and every
activation/heal lands in the injector's signed fault log.
"""

from repro.faults.plan import PartitionSpec
from repro.membership.manager import MembershipManager, MembershipView
from repro.membership.views import ComponentRingView

__all__ = [
    "ComponentRingView",
    "MembershipManager",
    "MembershipView",
    "PartitionSpec",
]
