"""Per-component Chord views: the ring each side of a partition sees.

A :class:`ComponentRingView` exposes the subset of the
:class:`~repro.dht.chord.ChordRing` interface the balancing protocol
consumes (``successor``/``region_of``/``alive_nodes``/``vs``/churn
removal), restricted to the physical nodes of one partition component.
Regions *re-tile* over the component's virtual servers — the arc owned
by a virtual server extends back to its predecessor **within the
component** — so a K-nary tree built over the view is internally
consistent: leaf regions tile the full identifier space, every KT node
is planted on a component virtual server, and the LBI/VSA/VST phases
run unchanged.  Cross-component state is simply invisible, which is
exactly the semantics of a network partition.

Virtual servers that are detached in flight (a mid-round partition
caught their transfer between ``prepare`` and ``commit``) are hosted by
no node and therefore absent from every component view until the heal
re-homes them.

The same re-tiling serves the Byzantine defense: when
:class:`~repro.adversary.TrustedAggregation` quarantines nodes, the
balancer runs the whole round over a view of the trusted survivors, so
the regions owned by excluded nodes re-tile onto their trusted
component predecessors and no protocol phase routes through an
untrusted node.
"""

from __future__ import annotations

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.node import PhysicalNode
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import DHTError, EmptyRingError
from repro.idspace import Region


class ComponentRingView:
    """A :class:`~repro.dht.chord.ChordRing` facade over one component.

    Parameters
    ----------
    ring:
        The underlying (whole) ring; mutations delegate to it so churn
        inside a component stays visible after the heal.
    member_indices:
        Node indices of this component, in deterministic order.
    """

    def __init__(self, ring: ChordRing, member_indices: tuple[int, ...]) -> None:
        """Snapshot the component's node list; see the class docstring."""
        self.ring = ring
        self.space = ring.space
        members = frozenset(member_indices)
        self.nodes: list[PhysicalNode] = [
            n for n in ring.nodes if n.index in members
        ]
        self._sorted_ids: np.ndarray | None = None
        self._sorted_vs: list[VirtualServer] | None = None

    # ------------------------------------------------------------------
    # Index maintenance (mirrors ChordRing's lazy sorted index)
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._sorted_ids = None
        self._sorted_vs = None

    def _ensure_index(self) -> None:
        if self._sorted_ids is not None:
            return
        hosted: list[VirtualServer] = [
            vs for node in self.nodes for vs in node.virtual_servers
        ]
        if not hosted:
            raise EmptyRingError("the partition component has no virtual servers")
        ids = np.asarray([vs.vs_id for vs in hosted], dtype=np.int64)
        order = np.argsort(ids)
        self._sorted_ids = ids[order]
        self._sorted_vs = [hosted[int(i)] for i in order]

    # ------------------------------------------------------------------
    # Queries (the protocol-facing subset of ChordRing)
    # ------------------------------------------------------------------
    @property
    def virtual_servers(self) -> list[VirtualServer]:
        """The component's hosted virtual servers in ring order."""
        self._ensure_index()
        assert self._sorted_vs is not None
        return list(self._sorted_vs)

    @property
    def num_virtual_servers(self) -> int:
        """Count of virtual servers hosted inside the component."""
        self._ensure_index()
        assert self._sorted_vs is not None
        return len(self._sorted_vs)

    @property
    def alive_nodes(self) -> list[PhysicalNode]:
        """Component nodes still participating."""
        return [n for n in self.nodes if n.alive]

    def vs(self, vs_id: int) -> VirtualServer:
        """The component's virtual server with exactly ``vs_id``.

        A virtual server outside the component (or detached in flight)
        is unreachable across the partition and raises
        :class:`~repro.exceptions.DHTError`, exactly like an id that
        never existed.
        """
        self._ensure_index()
        assert self._sorted_ids is not None and self._sorted_vs is not None
        idx = int(np.searchsorted(self._sorted_ids, vs_id, side="left"))
        if idx < len(self._sorted_ids) and int(self._sorted_ids[idx]) == vs_id:
            return self._sorted_vs[idx]
        raise DHTError(f"no virtual server with id {vs_id} in this component")

    def successor(self, key: int) -> VirtualServer:
        """The component virtual server owning ``key`` (wrapping)."""
        self.space.validate(key)
        self._ensure_index()
        assert self._sorted_ids is not None and self._sorted_vs is not None
        idx = int(np.searchsorted(self._sorted_ids, key, side="left"))
        if idx == len(self._sorted_ids):
            idx = 0
        return self._sorted_vs[idx]

    def host_with_region(self, key: int) -> tuple[VirtualServer, int, int]:
        """:meth:`successor` plus its owned arc as raw ``(start, length)``.

        Component analogue of :meth:`ChordRing.host_with_region`: one
        ``searchsorted`` over the component index yields the owner and
        its predecessor, with the single-VS full-ring convention of
        :meth:`region_of`.
        """
        self.space.validate(key)
        self._ensure_index()
        assert self._sorted_ids is not None and self._sorted_vs is not None
        ids = self._sorted_ids
        idx = int(np.searchsorted(ids, key, side="left"))
        if idx == len(ids):
            idx = 0
        vs = self._sorted_vs[idx]
        if len(ids) == 1:
            return vs, 0, self.space.size
        pred = int(ids[idx - 1])  # idx-1 == -1 wraps correctly
        size = self.space.size
        return vs, (pred + 1) % size, (vs.vs_id - pred) % size

    def predecessor_id(self, vs_id: int) -> int:
        """Identifier of the component VS preceding ``vs_id`` on the ring."""
        self._ensure_index()
        assert self._sorted_ids is not None
        idx = int(np.searchsorted(self._sorted_ids, vs_id, side="left"))
        if idx >= len(self._sorted_ids) or int(self._sorted_ids[idx]) != vs_id:
            raise DHTError(f"no virtual server with id {vs_id} in this component")
        return int(self._sorted_ids[idx - 1])  # idx-1 == -1 wraps correctly

    def region_of(self, vs: VirtualServer | int) -> Region:
        """The arc ``(component predecessor, vs_id]`` owned by ``vs``.

        With a single virtual server in the component the region is the
        full ring — the component's internally consistent view.
        """
        vs_id = vs.vs_id if isinstance(vs, VirtualServer) else int(vs)
        self._ensure_index()
        assert self._sorted_ids is not None
        if len(self._sorted_ids) == 1:
            if int(self._sorted_ids[0]) != vs_id:
                raise DHTError(
                    f"no virtual server with id {vs_id} in this component"
                )
            return Region.full(self.space)
        pred = self.predecessor_id(vs_id)
        start = self.space.wrap(pred + 1)
        length = self.space.distance_cw(pred, vs_id)
        return Region(self.space, start, length)

    # ------------------------------------------------------------------
    # Mutation (delegated; keeps the base ring authoritative)
    # ------------------------------------------------------------------
    def remove_virtual_server(self, vs: VirtualServer | int) -> VirtualServer:
        """Remove a component virtual server (crash/leave inside the split)."""
        removed = self.ring.remove_virtual_server(vs)
        self._invalidate()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComponentRingView(nodes={len(self.nodes)}, "
            f"vs={sum(len(n.virtual_servers) for n in self.nodes)})"
        )
