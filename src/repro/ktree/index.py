"""A struct-of-arrays index over a persistent K-nary tree.

:class:`TreeIndex` assigns every materialised :class:`~repro.ktree.node.KTNode`
a stable integer *slot* and mirrors the tree's linkage into contiguous
NumPy arrays (``parent``, ``level``, ``child_rank``, ``alive``,
``is_leaf``).  The incremental balancer folds LBI aggregates and sweeps
VSA buckets over slots instead of objects, which is what makes its hot
paths vectorisable:

* *Stamp walks* (:meth:`stamp_paths`) mark the union of root-to-leaf
  paths touched in the current round.  The stamped slot set is exactly
  the node set a from-scratch lazily-built tree would materialise for
  the same keys, so the serial path's message/height accounting can be
  reproduced from the stamps alone.
* *Leaf validity* (:attr:`alive` / :attr:`is_leaf`) lets cached
  key-to-leaf resolutions be checked in O(1): a cached leaf is still
  the correct destination for its key iff it is alive and still a leaf
  (tree shape is a pure function of the ring, so the root-to-leaf
  descent for the key cannot end anywhere else).

Slots are never reused: a pruned node's slot stays dead forever, so a
stale cached slot can never silently alias a new node.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TreeError
from repro.ktree.node import KTNode
from repro.ktree.tree import KnaryTree


class TreeIndex:
    """Slot registry and linkage arrays for one :class:`KnaryTree`.

    Parameters
    ----------
    tree:
        The tree to index.  The root is registered eagerly as slot 0;
        every other node registers lazily on first :meth:`slot` lookup
        (ancestor chains register root-down so ``parent[slot]`` is
        always valid).
    """

    __slots__ = (
        "tree",
        "nodes",
        "_slot_of",
        "_size",
        "_capacity",
        "parent",
        "level",
        "child_rank",
        "alive",
        "is_leaf",
        "start",
        "length",
        "_stamp",
        "_stamp_id",
        "_heap_keys",
        "_dir_starts",
        "_dir_ends",
        "_dir_slots",
        "_dir_pending",
    )

    #: Pending-patch flood valve: above ``max(64, len(directory) // 8)``
    #: dirty slots the batched splice costs more than a fresh sort.
    DIR_PATCH_FLOOR = 64

    def __init__(self, tree: KnaryTree, capacity: int = 1024) -> None:
        self.tree = tree
        self.nodes: list[KTNode | None] = []
        self._slot_of: dict[int, int] = {}
        self._size = 0
        self._capacity = max(int(capacity), 16)
        self.parent = np.full(self._capacity, -1, dtype=np.int64)
        self.level = np.zeros(self._capacity, dtype=np.int64)
        self.child_rank = np.zeros(self._capacity, dtype=np.int64)
        self.alive = np.zeros(self._capacity, dtype=bool)
        self.is_leaf = np.zeros(self._capacity, dtype=bool)
        self.start = np.zeros(self._capacity, dtype=np.int64)
        self.length = np.zeros(self._capacity, dtype=np.int64)
        self._stamp = np.zeros(self._capacity, dtype=np.int64)
        self._stamp_id = 0
        #: slot -> heap ordering key.  Safe to cache forever: a node's
        #: root path is fixed at registration and slots are never reused.
        self._heap_keys: dict[int, tuple[int, ...]] = {}
        # Sorted leaf directory (lazily built, incrementally patched;
        # see resolve_leaves).  ``_dir_pending`` holds slots whose leaf
        # membership may have changed since the directory was last
        # consistent; they are spliced in/out in one batched pass at the
        # next resolve instead of invalidating the whole sort.
        self._dir_starts: np.ndarray | None = None
        self._dir_ends: np.ndarray | None = None
        self._dir_slots: np.ndarray | None = None
        self._dir_pending: set[int] = set()
        self._register(tree.root, parent_slot=-1, rank=0)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def _grow(self) -> None:
        new_cap = self._capacity * 2
        for name in (
            "parent",
            "level",
            "child_rank",
            "alive",
            "is_leaf",
            "start",
            "length",
            "_stamp",
        ):
            old = getattr(self, name)
            fresh = np.full(new_cap, -1, dtype=np.int64) if name == "parent" else (
                np.zeros(new_cap, dtype=old.dtype)
            )
            fresh[: self._capacity] = old
            setattr(self, name, fresh)
        self._capacity = new_cap

    def _register(self, node: KTNode, parent_slot: int, rank: int) -> int:
        # Integer slot-count comparison; the rule keys on the "capacity"
        # name, but no float is involved.
        if self._size == self._capacity:  # lint: disable=no-float-equality
            self._grow()
        slot = self._size
        self._size += 1
        self.nodes.append(node)
        self._slot_of[id(node)] = slot
        self.parent[slot] = parent_slot
        self.level[slot] = node.level
        self.child_rank[slot] = rank
        self.alive[slot] = True
        self.is_leaf[slot] = node.is_leaf
        self.start[slot] = node.region.start
        self.length[slot] = node.region.length
        if node.is_leaf and self._dir_starts is not None:
            self._dir_pending.add(slot)
        return slot

    def slot(self, node: KTNode) -> int:
        """The slot of ``node``, registering its ancestor chain if new."""
        found = self._slot_of.get(id(node))
        if found is not None:
            return found
        chain: list[KTNode] = []
        current: KTNode | None = node
        while current is not None and id(current) not in self._slot_of:
            chain.append(current)
            current = current.parent
        if current is None:
            raise TreeError("node does not descend from the indexed root")
        slot = self._slot_of[id(current)]
        for item in reversed(chain):
            assert item.parent is not None
            rank = item.parent.children.index(item)
            slot = self._register(item, parent_slot=self._slot_of[id(item.parent)], rank=rank)
        return slot

    def slot_if_registered(self, node: KTNode) -> int | None:
        """The slot of ``node`` if it was ever registered, else ``None``.

        Unlike :meth:`slot` this never registers anything — safe to call
        with nodes the tree has already detached (delta bookkeeping).
        """
        return self._slot_of.get(id(node))

    def node_at(self, slot: int) -> KTNode:
        """The live node registered at ``slot``."""
        node = self.nodes[slot]
        if node is None:
            raise TreeError(f"slot {slot} was pruned")
        return node

    # ------------------------------------------------------------------
    # Maintenance (driven by KnaryTree.refresh_dirty deltas)
    # ------------------------------------------------------------------
    def drop(self, node: KTNode) -> None:
        """Retire a pruned node's slot (slots are never reused)."""
        slot = self._slot_of.pop(id(node), None)
        if slot is None:
            return
        self.nodes[slot] = None
        self.alive[slot] = False
        self.is_leaf[slot] = False
        if self._dir_starts is not None:
            self._dir_pending.add(slot)

    def set_leaf(self, node: KTNode, flag: bool) -> None:
        """Record a leaf-ness flip for ``node`` if it is registered."""
        slot = self._slot_of.get(id(node))
        if slot is not None:
            self.is_leaf[slot] = flag
            if self._dir_starts is not None:
                self._dir_pending.add(slot)

    def valid_leaf(self, slot: int) -> bool:
        """Whether ``slot`` still names a live leaf (cached-slot check)."""
        return bool(self.alive[slot]) and bool(self.is_leaf[slot])

    # ------------------------------------------------------------------
    # Batch key resolution
    # ------------------------------------------------------------------
    def _rebuild_directory(self) -> np.ndarray:
        live = np.flatnonzero(
            self.alive[: self._size] & self.is_leaf[: self._size]
        )
        raw = self.start[live]
        order = np.argsort(raw, kind="stable")
        starts = raw[order]
        self._dir_starts = starts
        self._dir_ends = starts + self.length[live][order]
        self._dir_slots = live[order]
        self._dir_pending.clear()
        return starts

    def _patch_directory(self) -> np.ndarray:
        """Splice the pending slots in/out of the sorted leaf directory.

        Self-correcting rather than event-ordered: every pending slot is
        first removed from the directory, then re-inserted iff it is a
        live leaf *now* — so a slot that flipped twice between resolves
        lands in the state the flag arrays describe.  Leaf regions tile
        the ring disjointly, so region starts are unique and one batched
        ``searchsorted`` + ``np.insert`` keeps the order strict.
        """
        starts = self._dir_starts
        slots_arr = self._dir_slots
        assert starts is not None and slots_arr is not None
        assert self._dir_ends is not None
        pending = np.fromiter(
            self._dir_pending, count=len(self._dir_pending), dtype=np.int64
        )
        self._dir_pending.clear()
        if pending.size > max(self.DIR_PATCH_FLOOR, slots_arr.size // 8):
            return self._rebuild_directory()
        stale = np.isin(slots_arr, pending)
        if stale.any():
            keep = ~stale
            starts = starts[keep]
            slots_arr = slots_arr[keep]
            self._dir_ends = self._dir_ends[keep]
        fresh = pending[self.alive[pending] & self.is_leaf[pending]]
        if fresh.size:
            raw = self.start[fresh]
            order = np.argsort(raw, kind="stable")
            fresh = fresh[order]
            raw = raw[order]
            pos = np.searchsorted(starts, raw, side="left")
            starts = np.insert(starts, pos, raw)
            slots_arr = np.insert(slots_arr, pos, fresh)
            self._dir_ends = np.insert(
                self._dir_ends, pos, raw + self.length[fresh]
            )
        self._dir_starts = starts
        self._dir_slots = slots_arr
        return starts

    def resolve_leaves(self, keys: np.ndarray) -> np.ndarray:
        """Slots of the *already materialised* leaves owning ``keys``.

        Returns one slot per key, or ``-1`` where no materialised leaf
        contains the key (the caller descends the tree for those).  Works
        off a sorted directory of live leaf regions, built lazily and
        patched in place when leaves register, prune or flip (one
        batched splice per resolve, with a flood valve back to a full
        rebuild); tree-node regions never wrap (splits of ``[0, size)``
        stay within it) so a binary search on the region starts
        suffices.
        """
        starts = self._dir_starts
        if starts is None:
            starts = self._rebuild_directory()
        elif self._dir_pending:
            starts = self._patch_directory()
        assert self._dir_ends is not None and self._dir_slots is not None
        if not starts.size:
            return np.full(len(keys), -1, dtype=np.int64)
        pos = np.searchsorted(starts, keys, side="right") - 1
        hit = pos >= 0
        safe = np.where(hit, pos, 0)
        hit &= keys < self._dir_ends[safe]
        return np.where(hit, self._dir_slots[safe], -1)

    # ------------------------------------------------------------------
    # Stamp walks
    # ------------------------------------------------------------------
    def new_stamp(self) -> None:
        """Start a fresh stamp generation (call once per round)."""
        self._stamp_id += 1

    def stamp_paths(self, slots: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Stamp the root paths of ``slots`` under the current generation.

        Returns ``(fresh, count, max_level)``: the slots newly stamped by
        this call (deduplicated, unordered), how many there were, and the
        maximum level among them (0 when nothing fresh was stamped).
        Calling again within the same generation unions further paths
        without double-counting — the LBI walk and the VSA delivery walk
        share one generation so their union reproduces the serial
        fresh-tree materialisation count.
        """
        sid = self._stamp_id
        stamp = self._stamp
        parent = self.parent
        chunks: list[np.ndarray] = []
        count = 0
        max_level = 0
        current = np.unique(np.asarray(slots, dtype=np.int64))
        if current.size:
            current = current[stamp[current] != sid]
        while current.size:
            stamp[current] = sid
            chunks.append(current)
            count += int(current.size)
            max_level = max(max_level, int(self.level[current].max()))
            parents = parent[current]
            parents = parents[parents >= 0]
            if parents.size:
                parents = np.unique(parents)
                current = parents[stamp[parents] != sid]
            else:
                current = parents
        if chunks:
            fresh = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        else:
            fresh = np.empty(0, dtype=np.int64)
        return fresh, count, max_level

    # ------------------------------------------------------------------
    # Sweep ordering
    # ------------------------------------------------------------------
    def heap_key(self, slot: int) -> tuple[int, ...]:
        """Negated root-to-node child-rank path for min-heap ordering.

        Sorting ascending by this key walks equal-level nodes in
        *descending* path order — the order the serial bottom-up VSA
        sweep visits them (preorder with children pushed ascending and
        popped in reverse).  Keys are cached per slot: the root path is
        fixed at registration and slots are never reused.
        """
        key = self._heap_keys.get(slot)
        if key is not None:
            return key
        parts: list[int] = []
        parent = self.parent
        rank = self.child_rank
        current = int(slot)
        while parent[current] >= 0:
            parts.append(-int(rank[current]))
            current = int(parent[current])
        parts.reverse()
        key = tuple(parts)
        self._heap_keys[slot] = key
        return key
