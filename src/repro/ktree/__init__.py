"""The distributed K-nary tree built on top of the DHT (paper Section 3.1).

Every KT node owns a contiguous portion of the identifier space — the
root owns all of it — and is *planted* in the virtual server that owns
the center point of its region.  A KT node whose region is completely
covered by its hosting virtual server's region is a leaf; otherwise its
region splits into K equal parts, one per child.  The tree therefore
tracks the DHT's ring structure and can always be reconstructed from it,
which is what makes it self-repairing under churn.
"""

from repro.ktree.node import KTNode
from repro.ktree.tree import KnaryTree, RefreshDelta
from repro.ktree.index import TreeIndex

__all__ = ["KTNode", "KnaryTree", "RefreshDelta", "TreeIndex"]
