"""A single node of the K-nary tree."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.idspace import Region

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dht.virtual_server import VirtualServer


class KTNode:
    """One node of the K-nary tree.

    Attributes
    ----------
    region:
        The contiguous identifier-space portion this KT node is
        responsible for.
    level:
        Depth in the tree; the root is level 0.
    parent:
        Parent KT node (``None`` for the root).
    children:
        Materialised children, indexed by child position; positions that
        have not (yet) been materialised hold ``None``.  Empty list on
        leaves.
    host_vs:
        The virtual server the KT node is planted in — the owner of
        ``region.center``.  Refreshed by the tree when the ring changes.
    """

    __slots__ = ("region", "level", "parent", "children", "host_vs", "is_leaf")

    def __init__(
        self,
        region: Region,
        level: int,
        parent: "KTNode | None",
        host_vs: "VirtualServer",
        is_leaf: bool,
        k: int,
    ):
        self.region = region
        self.level = level
        self.parent = parent
        self.host_vs = host_vs
        self.is_leaf = is_leaf
        self.children: list[KTNode | None] = [] if is_leaf else [None] * k

    @property
    def planted_key(self) -> int:
        """The DHT key at which this KT node is planted."""
        return self.region.center

    def materialized_children(self) -> Iterator["KTNode"]:
        """Children that exist in this (possibly lazily-built) tree."""
        for child in self.children:
            if child is not None:
                yield child

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "internal"
        return f"KTNode(level={self.level}, {kind}, region={self.region!r})"
