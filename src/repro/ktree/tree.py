"""Construction and maintenance of the K-nary tree.

Two construction modes are provided:

* :meth:`KnaryTree.build_full` materialises every KT node down to the
  leaves.  Exact but O(#leaves); meant for small rings and for tests
  that verify the structural invariants (every virtual server hosts at
  least one leaf, leaf regions tile the ring, ...).

* :meth:`KnaryTree.ensure_leaf_for_key` materialises only the root-to-
  leaf path for a given key.  Because the tree shape is a pure function
  of the ring, lazily materialised paths coincide exactly with the full
  tree; the aggregation and VSA sweeps only ever touch the paths of keys
  that carry information, which keeps the paper-scale experiments
  (4096 nodes x 5 virtual servers, 32-bit space) cheap.

Self-repair (Section 3.1.1) is modelled by :meth:`KnaryTree.refresh`:
after any ring change it re-plants every materialised KT node in the
virtual server that now owns its center point, prunes children that
became redundant (region now covered by the hosting VS) and grows
children that became necessary.  Each refresh pass corresponds to one
round of the paper's periodic top-down checking.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.dht.ringlike import RingLike
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import TreeError
from repro.idspace import IntervalSet, Region
from repro.ktree.node import KTNode
from repro.obs.metrics import MetricsRegistry


@dataclass
class RefreshDelta:
    """Structural outcome of one :meth:`KnaryTree.refresh_dirty` pass.

    Carries the affected node *objects* (not just counters) so slot
    indexes and key-to-leaf caches can invalidate exactly the entries
    the repair touched.
    """

    replanted: int = 0
    pruned_nodes: list[KTNode] = field(default_factory=list)
    became_leaf: list[KTNode] = field(default_factory=list)
    became_internal: list[KTNode] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        """Whether the pass changed any structure or planting."""
        return bool(
            self.replanted
            or self.pruned_nodes
            or self.became_leaf
            or self.became_internal
        )


class KnaryTree:
    """The K-nary aggregation/assignment tree over a Chord ring.

    Parameters
    ----------
    ring:
        The Chord ring the tree is built on.
    k:
        Tree degree (the paper evaluates K=2 and K=8).
    metrics:
        Optional metrics registry; when attached, the tree counts node
        materialisations (``ktree.materialized``) and self-repair work
        (``ktree.replanted`` / ``ktree.pruned`` / ``ktree.grown``).
    epoch:
        Membership view number this tree was built under (0 = the
        unpartitioned view).  Per-component trees built during a
        partition carry the partitioned epoch, and LBI reports
        aggregated through them are tagged with it so the sanity
        defense can reject cross-epoch state.
    """

    def __init__(
        self,
        ring: RingLike,
        k: int = 2,
        metrics: MetricsRegistry | None = None,
        *,
        epoch: int = 0,
    ) -> None:
        if not isinstance(k, int) or k < 2:
            raise TreeError(f"tree degree must be an integer >= 2, got {k!r}")
        self.ring = ring
        self.k = k
        self.metrics = metrics
        self.epoch = epoch
        self.root = self._make_node(Region.full(ring.space), level=0, parent=None)
        self._node_count = 1

    # ------------------------------------------------------------------
    # Node construction helpers
    # ------------------------------------------------------------------
    def _make_node(self, region: Region, level: int, parent: KTNode | None) -> KTNode:
        host, is_leaf = self._host_and_leaf(region)
        return KTNode(region=region, level=level, parent=parent, host_vs=host, is_leaf=is_leaf, k=self.k)

    def _host_and_leaf(self, region: Region) -> tuple[VirtualServer, bool]:
        """Hosting VS of ``region`` and the paper's leaf rule, in one probe.

        A KT node is a leaf when its region is completely covered by the
        region of its hosting virtual server (the successor of its center
        point).  On degenerate tiny rings a region may also become too
        small to split into K parts; such a region cannot grow children
        either, so it is a leaf.

        Uses :meth:`~repro.dht.ringlike.RingLike.host_with_region` so the
        host lookup and the coverage test share a single index probe; the
        raw-integer arithmetic mirrors :meth:`Region.covers` exactly.
        """
        host, hstart, hlength = self.ring.host_with_region(region.center)
        size = self.ring.space.size
        if hlength == size:
            covered = True
        elif region.length == size:
            covered = False
        else:
            covered = (region.start - hstart) % size + region.length <= hlength
        return host, covered or region.length < self.k

    def _materialize_child(self, node: KTNode, index: int) -> KTNode:
        if node.is_leaf:
            raise TreeError("leaf KT nodes have no children")
        existing = node.children[index]
        if existing is not None:
            return existing
        child_region = node.region.split_part(self.k, index)
        child = self._make_node(child_region, level=node.level + 1, parent=node)
        node.children[index] = child
        self._node_count += 1
        if self.metrics is not None:
            self.metrics.counter("ktree.materialized").inc()
        return child

    # ------------------------------------------------------------------
    # Construction modes
    # ------------------------------------------------------------------
    def build_full(self, max_nodes: int = 2_000_000) -> None:
        """Materialise the entire tree (small rings / structural tests).

        Raises :class:`TreeError` when the tree would exceed ``max_nodes``
        — a guard against accidentally full-building a 32-bit ring.
        """
        queue: deque[KTNode] = deque([self.root])
        while queue:
            node = queue.popleft()
            if node.is_leaf:
                continue
            for i in range(self.k):
                child = self._materialize_child(node, i)
                if self._node_count > max_nodes:
                    raise TreeError(
                        f"full tree exceeds max_nodes={max_nodes}; "
                        "use lazy construction for large rings"
                    )
                queue.append(child)

    def ensure_leaf_for_key(self, key: int) -> KTNode:
        """Materialise (if needed) and return the leaf whose region has ``key``.

        The returned leaf is identical to the one :meth:`build_full`
        would produce, because the split sequence is deterministic.

        The descent tracks the current region as raw ``(start, length)``
        integers and replicates :meth:`Region.child_index_for` inline, so
        steps through already-materialised children cost no region
        allocation or validation; :class:`~repro.idspace.Region` objects
        are only built when a child is genuinely new.
        """
        self.ring.space.validate(key)
        size = self.ring.space.size
        k = self.k
        node = self.root
        start, length = 0, size
        guard = 0
        while not node.is_leaf:
            offset = (key - start) % size
            base, extra = divmod(length, k)
            boundary = (base + 1) * extra
            if offset < boundary:
                index = offset // (base + 1)
                child_offset = index * (base + 1)
                child_length = base + 1
            else:
                index = extra + (offset - boundary) // base
                child_offset = boundary + (index - extra) * base
                child_length = base
            child = node.children[index]
            if child is None:
                child = self._materialize_child(node, index)
            node = child
            start = (start + child_offset) % size
            length = child_length
            guard += 1
            if guard > 8 * self.ring.space.bits:  # pragma: no cover
                raise TreeError("runaway descent in ensure_leaf_for_key")
        return node

    def descend_batch(
        self, keys: np.ndarray
    ) -> tuple[list[KTNode], np.ndarray]:
        """Level-synchronous batched descent: all ``keys`` down together.

        Returns ``(leaves, ordinals)``: the distinct leaves reached, in
        first-touch order, and for every input key the position of its
        leaf in ``leaves``.  Behaviourally identical to calling
        :meth:`ensure_leaf_for_key` per key (the split sequence is a
        pure function of the ring, so the same leaves materialise), but
        the per-level child arithmetic — digit extraction against the
        uneven K-way split — runs once over the whole active key set as
        NumPy integer programs, and the Python loop touches each
        *distinct* ``(node, child)`` pair exactly once per level.  The
        total Python work is therefore proportional to the number of
        distinct path nodes the key set touches, not ``len(keys) x
        depth``.

        Already-materialised children are stepped through without
        building :class:`~repro.idspace.Region` objects; genuinely new
        children materialise in bulk per level — one vectorised
        :meth:`~repro.dht.chord.ChordRing.hosts_with_regions` probe
        answers every new child's planting and leaf-ness at once, and
        regions are built through the trusted constructor (the split
        arithmetic guarantees their validity).  Rings without the
        vectorised probe (per-component partition views) fall back to
        :meth:`_materialize_child` per child; either way the
        ``ktree.materialized`` accounting matches the serial descent.
        """
        size = self.ring.space.size
        k = self.k
        space = self.ring.space
        bulk_hosts = getattr(self.ring, "hosts_with_regions", None)
        key_arr = np.ascontiguousarray(keys, dtype=np.int64)
        n = int(key_arr.size)
        if n == 0:
            return [], np.empty(0, dtype=np.int64)
        if int(key_arr.min()) < 0 or int(key_arr.max()) >= size:
            raise TreeError("descend_batch key outside the identifier space")
        ordinals = np.empty(n, dtype=np.int64)
        leaves: list[KTNode] = []
        leaf_ordinal: dict[int, int] = {}
        if self.root.is_leaf:
            leaves.append(self.root)
            ordinals[:] = 0
            return leaves, ordinals
        # Frontier: the distinct internal nodes the active keys sit at,
        # with their regions as raw (start, length) integer columns.
        frontier: list[KTNode] = [self.root]
        f_start = np.zeros(1, dtype=np.int64)
        f_length = np.full(1, size, dtype=np.int64)
        key_node = np.zeros(n, dtype=np.int64)
        active = np.arange(n, dtype=np.int64)
        guard = 0
        while active.size:
            akeys = key_arr[active]
            anode = key_node[active]
            starts = f_start[anode]
            lengths = f_length[anode]
            # Inline Region.child_index_for over the whole active set
            # (internal regions always have length >= k, so base >= 1).
            offsets = (akeys - starts) % size
            base = lengths // k
            extra = lengths - base * k
            boundary = (base + 1) * extra
            below = offsets < boundary
            idx = np.where(
                below,
                offsets // (base + 1),
                extra + (offsets - boundary) // np.maximum(base, 1),
            )
            child_offset = np.where(
                below, idx * (base + 1), boundary + (idx - extra) * base
            )
            child_length = np.where(below, base + 1, base)
            # Group the active keys by (frontier node, child digit) and
            # materialise each distinct child once.
            group = anode * k + idx
            uniq, first_pos, inverse = np.unique(
                group, return_index=True, return_inverse=True
            )
            g_start = (starts[first_pos] + child_offset[first_pos]) % size
            g_length = child_length[first_pos]
            parents_u = [frontier[g] for g in (uniq // k).tolist()]
            ranks_u = (uniq % k).tolist()
            children_u: list[KTNode | None] = [
                node.children[rank] for node, rank in zip(parents_u, ranks_u)
            ]
            missing = [j for j, c in enumerate(children_u) if c is None]
            if missing:
                if bulk_hosts is not None:
                    m = np.asarray(missing, dtype=np.int64)
                    m_start = g_start[m]
                    m_length = g_length[m]
                    centers = (m_start + m_length // 2) % size
                    hosts, h_start, h_length = bulk_hosts(centers)
                    covered = np.where(
                        h_length == size,
                        True,
                        (m_start - h_start) % size + m_length <= h_length,
                    )
                    new_leaf = covered | (m_length < k)
                    trusted = Region.trusted
                    for j, start_j, length_j, host, leaf_j in zip(
                        missing,
                        m_start.tolist(),
                        m_length.tolist(),
                        hosts,
                        new_leaf.tolist(),
                    ):
                        node = parents_u[j]
                        child = KTNode(
                            trusted(space, start_j, length_j),
                            node.level + 1,
                            node,
                            host,
                            leaf_j,
                            k,
                        )
                        node.children[ranks_u[j]] = child
                        children_u[j] = child
                    self._node_count += len(missing)
                    if self.metrics is not None:
                        self.metrics.counter("ktree.materialized").inc(
                            len(missing)
                        )
                else:
                    for j in missing:
                        children_u[j] = self._materialize_child(
                            parents_u[j], ranks_u[j]
                        )
            child_is_leaf = np.empty(uniq.size, dtype=bool)
            child_ord = np.empty(uniq.size, dtype=np.int64)
            next_frontier: list[KTNode] = []
            for j, child in enumerate(children_u):
                assert child is not None
                if child.is_leaf:
                    child_is_leaf[j] = True
                    ordinal = leaf_ordinal.get(id(child))
                    if ordinal is None:
                        ordinal = len(leaves)
                        leaves.append(child)
                        leaf_ordinal[id(child)] = ordinal
                    child_ord[j] = ordinal
                else:
                    child_is_leaf[j] = False
                    child_ord[j] = len(next_frontier)
                    next_frontier.append(child)
            per_key_leaf = child_is_leaf[inverse]
            per_key_ord = child_ord[inverse]
            done = active[per_key_leaf]
            if done.size:
                ordinals[done] = per_key_ord[per_key_leaf]
            cont = ~per_key_leaf
            active = active[cont]
            if active.size:
                key_node[active] = per_key_ord[cont]
            frontier = next_frontier
            keep = ~child_is_leaf
            f_start = g_start[keep]
            f_length = g_length[keep]
            guard += 1
            if guard > 8 * self.ring.space.bits:  # pragma: no cover
                raise TreeError("runaway descent in descend_batch")
        return leaves, ordinals

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of currently materialised KT nodes."""
        return self._node_count

    def iter_nodes(self) -> Iterator[KTNode]:
        """All materialised nodes, preorder."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.materialized_children())

    def leaves(self) -> list[KTNode]:
        """All materialised leaves."""
        return [n for n in self.iter_nodes() if n.is_leaf]

    def height(self) -> int:
        """Maximum level among materialised nodes (root = 0)."""
        return max((n.level for n in self.iter_nodes()), default=0)

    def nodes_by_level_desc(self) -> list[KTNode]:
        """Materialised nodes sorted deepest-first (bottom-up sweep order)."""
        return sorted(self.iter_nodes(), key=lambda n: -n.level)

    # ------------------------------------------------------------------
    # Maintenance (self-repair)
    # ------------------------------------------------------------------
    def refresh(self) -> dict[str, int]:
        """One top-down maintenance pass after ring changes.

        Re-plants every materialised node, prunes subtrees whose root
        became a leaf (region now covered by a single virtual server) and
        re-evaluates leaf-ness the other way (a leaf whose host shrank
        grows back into an internal node with unmaterialised children).

        Returns counters: ``replanted``, ``pruned``, ``grown``.
        """
        replanted = pruned = grown = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            new_host, leaf_now = self._host_and_leaf(node.region)
            if new_host is not node.host_vs:
                node.host_vs = new_host
                replanted += 1
            if leaf_now and not node.is_leaf:
                removed = sum(1 for _ in self._count_subtree(node)) - 1
                pruned += removed
                self._node_count -= removed
                node.children = []
                node.is_leaf = True
            elif not leaf_now and node.is_leaf:
                node.is_leaf = False
                node.children = [None] * self.k
                grown += 1
            stack.extend(node.materialized_children())
        if self.metrics is not None:
            self.metrics.counter("ktree.replanted").inc(replanted)
            self.metrics.counter("ktree.pruned").inc(pruned)
            self.metrics.counter("ktree.grown").inc(grown)
        return {"replanted": replanted, "pruned": pruned, "grown": grown}

    def refresh_dirty(self, dirty: IntervalSet) -> RefreshDelta:
        """Self-repair restricted to the subtrees overlapping ``dirty``.

        Behaviourally a :meth:`refresh` that skips every subtree whose
        region does not intersect the dirty identifier spans.  This is
        sound because a KT node's planting and leaf-ness depend only on
        the ring ownership of identifiers inside its own region: when no
        ownership inside the region changed, ``successor(center)`` and
        the covering test give the answers they gave last round.  The
        caller is responsible for ``dirty`` covering every region whose
        ownership changed (see
        :meth:`repro.dht.events.RingEventLog.drain`, which derives the
        spans from the logged ring events).

        Returns a :class:`RefreshDelta` naming the pruned and flipped
        nodes so slot indexes and key-to-leaf caches can be updated
        without rescanning the tree.
        """
        delta = RefreshDelta()
        if not dirty:
            return delta
        stack = [self.root]
        while stack:
            node = stack.pop()
            new_host, leaf_now = self._host_and_leaf(node.region)
            if new_host is not node.host_vs:
                node.host_vs = new_host
                delta.replanted += 1
            if leaf_now and not node.is_leaf:
                removed = [n for n in self._count_subtree(node) if n is not node]
                delta.pruned_nodes.extend(removed)
                self._node_count -= len(removed)
                node.children = []
                node.is_leaf = True
                delta.became_leaf.append(node)
            elif not leaf_now and node.is_leaf:
                node.is_leaf = False
                node.children = [None] * self.k
                delta.became_internal.append(node)
            for child in node.materialized_children():
                if dirty.overlaps_region(child.region):
                    stack.append(child)
        if self.metrics is not None:
            self.metrics.counter("ktree.replanted").inc(delta.replanted)
            self.metrics.counter("ktree.pruned").inc(len(delta.pruned_nodes))
            self.metrics.counter("ktree.grown").inc(len(delta.became_internal))
        return delta

    def _count_subtree(self, node: KTNode) -> Iterator[KTNode]:
        stack = [node]
        while stack:
            n = stack.pop()
            yield n
            stack.extend(n.materialized_children())

    def check_invariants(self) -> None:
        """Structural invariants of a (fully or lazily) materialised tree."""
        for node in self.iter_nodes():
            host_region = self.ring.region_of(node.host_vs)
            if not host_region.contains(node.region.center):
                raise TreeError("KT node planted in a VS that does not own its center")
            if node.is_leaf:
                if not (host_region.covers(node.region) or node.region.length < self.k):
                    raise TreeError("leaf KT node's region is not covered by its host VS")
            else:
                if host_region.covers(node.region):
                    raise TreeError("internal KT node should be a leaf")
                for i, child in enumerate(node.children):
                    if child is None:
                        continue
                    if child.parent is not node:
                        raise TreeError("child/parent link mismatch")
                    expected = node.region.split(self.k)[i]
                    if child.region != expected:
                        raise TreeError("child region does not match split position")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KnaryTree(k={self.k}, materialized={self._node_count}, "
            f"epoch={self.epoch})"
        )
