"""Bounded retries: exponential backoff, seeded jitter, phase budgets.

Protocol messages lost to an injected fault are retried — but never
forever.  A :class:`RetryPolicy` bounds recovery three ways at once:

* **attempts** — at most ``max_attempts`` sends per message;
* **per-try backoff** — delay before attempt ``k`` grows as
  ``base_delay * 2**(k-1)``, capped at ``max_delay``, multiplied by a
  jitter factor drawn from a *seeded* generator (unseeded jitter would
  silently break run-for-run reproducibility, which is why the
  ``bounded-retry`` lint rule insists on :mod:`repro.util.rng`);
* **phase budget** — a :class:`RetryBudget` caps the *total* simulated
  time one phase may burn on recovery, so a high drop rate degrades the
  round instead of stalling it.

Degraded mode is part of the same policy: when LBI re-aggregation fails
outright, the balancer may reuse the previous round's aggregate as long
as it is at most ``lbi_staleness_rounds`` rounds old — an explicit
staleness bound instead of an open-ended cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import FaultPlanError

#: Supported backoff jitter strategies (see :attr:`RetryPolicy.jitter_mode`).
JITTER_MODES = ("scaled", "full", "decorrelated")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Recovery knobs shared by every phase of a degraded round.

    Parameters
    ----------
    max_attempts:
        Maximum sends per message (first try included); must be >= 1.
    base_delay:
        Backoff before the first retry, in simulated time units.
    max_delay:
        Cap on any single backoff interval.
    jitter:
        Fraction of each backoff randomised away: the delay is scaled
        by ``1 - jitter + jitter * u`` with ``u ~ U[0, 1)`` drawn from
        the caller's seeded generator.  ``0`` disables jitter.
    jitter_mode:
        How the jitter draw shapes the delay.  ``"scaled"`` (default)
        is the classic partial jitter above; ``"full"`` draws the whole
        delay from ``U[0, raw)`` (maximal desynchronisation, AWS-style
        "full jitter"); ``"decorrelated"`` draws from
        ``U[base_delay, 3 * previous)`` capped at ``max_delay``, which
        forgets the attempt number and instead decorrelates consecutive
        retries.  Every mode draws exactly one variate per backoff from
        the caller's seeded generator, so changing modes never shifts
        any other stream.
    phase_budget:
        Total simulated time one phase may spend on backoff before
        giving up on further retries (degraded mode takes over).
    lbi_staleness_rounds:
        How many rounds old a cached system LBI may be and still be
        reused when re-aggregation fails.  ``0`` disables stale reuse.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 1.0
    jitter: float = 0.5
    jitter_mode: str = "scaled"
    phase_budget: float = 8.0
    lbi_staleness_rounds: int = 2

    def __post_init__(self) -> None:
        """Validate every knob; raises :class:`FaultPlanError`."""
        if self.max_attempts < 1:
            raise FaultPlanError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise FaultPlanError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}..{self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise FaultPlanError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.jitter_mode not in JITTER_MODES:
            raise FaultPlanError(
                f"jitter_mode must be one of {JITTER_MODES}, "
                f"got {self.jitter_mode!r}"
            )
        if self.phase_budget < 0:
            raise FaultPlanError(f"phase_budget must be >= 0, got {self.phase_budget}")
        if self.lbi_staleness_rounds < 0:
            raise FaultPlanError(
                f"lbi_staleness_rounds must be >= 0, got {self.lbi_staleness_rounds}"
            )

    def backoff_delay(
        self,
        attempt: int,
        rng: np.random.Generator,
        previous: float | None = None,
    ) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered.

        Exponential growth capped at ``max_delay``; the jitter variate
        is drawn from ``rng`` so the schedule is a pure function of the
        seed.  ``previous`` is the delay the caller last slept (fed
        back by :func:`deliver_with_retry`); only the
        ``"decorrelated"`` mode consumes it, the others derive the
        delay from ``attempt`` alone.
        """
        if attempt < 1:
            raise FaultPlanError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        if self.jitter == 0:
            return raw
        if self.jitter_mode == "scaled":
            return raw * (1.0 - self.jitter + self.jitter * float(rng.random()))
        if self.jitter_mode == "full":
            return raw * float(rng.random())
        anchor = self.base_delay if previous is None else previous
        span = max(3.0 * anchor - self.base_delay, 0.0)
        return min(
            self.base_delay + span * float(rng.random()), self.max_delay
        )


class RetryBudget:
    """Mutable per-phase account of simulated recovery time.

    One budget instance covers one phase of one round; every backoff
    interval is charged against it and retries stop (degraded mode)
    once it is exhausted.
    """

    __slots__ = ("limit", "spent")

    def __init__(self, limit: float) -> None:
        """Open a budget of ``limit`` simulated time units."""
        if limit < 0:
            raise FaultPlanError(f"budget limit must be >= 0, got {limit}")
        self.limit = limit
        self.spent = 0.0

    @property
    def remaining(self) -> float:
        """Unspent simulated time (never negative)."""
        return max(self.limit - self.spent, 0.0)

    def charge(self, amount: float) -> bool:
        """Spend ``amount`` if it fits; returns whether it was charged."""
        if amount < 0:
            raise FaultPlanError(f"cannot charge a negative amount {amount}")
        if self.spent + amount > self.limit:
            return False
        self.spent += amount
        return True


@dataclass(frozen=True, slots=True)
class DeliveryOutcome:
    """Result of pushing one message through drop faults with retries."""

    delivered: bool
    attempts: int
    simulated_delay: float


def deliver_with_retry(
    policy: RetryPolicy,
    dropped: Callable[[int], bool],
    rng: np.random.Generator,
    budget: RetryBudget,
    extra_delay: float = 0.0,
) -> DeliveryOutcome:
    """Attempt a send until it survives the drop fault or bounds bite.

    ``dropped(attempt)`` is the (injected) loss decision for the given
    1-based attempt number.  Retries stop at ``policy.max_attempts`` or
    when the backoff no longer fits in ``budget`` — an explicitly
    bounded loop, never ``while True``.  ``extra_delay`` models an
    injected in-flight delay on the first attempt; it is charged to the
    budget but never blocks delivery.
    """
    delay = 0.0
    if extra_delay > 0:
        budget.charge(extra_delay)
        delay += extra_delay
    attempts = 0
    previous: float | None = None
    for attempt in range(1, policy.max_attempts + 1):
        attempts = attempt
        if not dropped(attempt):
            return DeliveryOutcome(
                delivered=True, attempts=attempts, simulated_delay=delay
            )
        if attempt == policy.max_attempts:
            break
        backoff = policy.backoff_delay(attempt, rng, previous=previous)
        previous = backoff
        if not budget.charge(backoff):
            break  # budget exhausted: give up early, degrade gracefully
        delay += backoff
    return DeliveryOutcome(delivered=False, attempts=attempts, simulated_delay=delay)
