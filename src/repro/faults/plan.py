"""The declarative fault model: what can go wrong, how often, seeded how.

A :class:`FaultPlan` is a frozen value object describing the failure
environment one balancing round (or churn simulation) runs under.  It
deliberately carries *probabilities and budgets*, never decisions: the
decisions are drawn by a :class:`~repro.faults.injector.FaultInjector`
seeded from ``plan.seed``, which is what makes a chaos run a pure
function of ``(scenario seed, plan)`` — the same plan replayed against
the same system reproduces the identical fault sequence byte for byte.

The modelled fault classes mirror how Mirrezaei & Shahparian and
Roussopoulos & Baker stress their balancers:

* **message drop** — an LBI report, VSA publication or heartbeat is
  lost in flight (retried under the round's
  :class:`~repro.faults.retry.RetryPolicy`);
* **message delay** — delivery succeeds but late, consuming simulated
  time from the phase's timeout budget;
* **message duplication** — the same report arrives twice (suppressed
  at the receiving KT leaf by sequence number, but counted);
* **node crash mid-round** — a physical node dies *between* VST
  transfers, after classification already ran against its load;
* **transfer abort** — a virtual-server move fails mid-flight and must
  be rolled back without violating load conservation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FaultPlanError


def _check_probability(name: str, value: float) -> None:
    """Raise :class:`FaultPlanError` unless ``value`` is in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Seeded, declarative description of one failure environment.

    Parameters
    ----------
    seed:
        Root seed of the injector's decision streams.  Independent of
        the scenario seed so the *same* fault sequence can be replayed
        against different workloads (and vice versa).
    drop:
        Per-message drop probability (LBI reports, VSA publications,
        heartbeats, tree-maintenance messages).
    delay:
        Per-message delay probability; a delayed message still arrives
        but consumes up to ``delay_max`` simulated time units of the
        phase budget.
    delay_max:
        Upper bound of the (uniform) injected delay, in simulated time
        units.
    duplicate:
        Per-message duplication probability; duplicates are detected at
        the receiver and suppressed, but cost a message.
    crash_mid_round:
        Number of physical-node crashes to inject per balancing round,
        placed at seeded positions inside the VST transfer batch (the
        worst possible moment: after classification, during movement).
    transfer_abort:
        Per-transfer probability that a virtual-server move aborts
        mid-flight and is rolled back by the two-phase VST commit.
    """

    seed: int = 0
    drop: float = 0.0
    delay: float = 0.0
    delay_max: float = 3.0
    duplicate: float = 0.0
    crash_mid_round: int = 0
    transfer_abort: float = 0.0

    def __post_init__(self) -> None:
        """Validate every knob; raises :class:`FaultPlanError`."""
        _check_probability("drop", self.drop)
        _check_probability("delay", self.delay)
        _check_probability("duplicate", self.duplicate)
        _check_probability("transfer_abort", self.transfer_abort)
        if self.delay_max < 0:
            raise FaultPlanError(f"delay_max must be >= 0, got {self.delay_max}")
        if self.crash_mid_round < 0:
            raise FaultPlanError(
                f"crash_mid_round must be >= 0, got {self.crash_mid_round}"
            )

    @property
    def is_null(self) -> bool:
        """Whether this plan injects nothing (the fault-free environment)."""
        return (
            self.drop == 0
            and self.delay == 0
            and self.duplicate == 0
            and self.crash_mid_round == 0
            and self.transfer_abort == 0
        )


#: The fault-free environment: attach it anywhere a plan is accepted to
#: get exactly the failure-free behaviour (every decision stream still
#: exists, it just never fires).
NULL_PLAN = FaultPlan()
