"""The declarative fault model: what can go wrong, how often, seeded how.

A :class:`FaultPlan` is a frozen value object describing the failure
environment one balancing round (or churn simulation) runs under.  It
deliberately carries *probabilities and budgets*, never decisions: the
decisions are drawn by a :class:`~repro.faults.injector.FaultInjector`
seeded from ``plan.seed``, which is what makes a chaos run a pure
function of ``(scenario seed, plan)`` — the same plan replayed against
the same system reproduces the identical fault sequence byte for byte.

The modelled fault classes mirror how Mirrezaei & Shahparian and
Roussopoulos & Baker stress their balancers:

* **message drop** — an LBI report, VSA publication or heartbeat is
  lost in flight (retried under the round's
  :class:`~repro.faults.retry.RetryPolicy`);
* **message delay** — delivery succeeds but late, consuming simulated
  time from the phase's timeout budget;
* **message duplication** — the same report arrives twice (suppressed
  at the receiving KT leaf by sequence number, but counted);
* **node crash mid-round** — a physical node dies *between* VST
  transfers, after classification already ran against its load;
* **transfer abort** — a virtual-server move fails mid-flight and must
  be rolled back without violating load conservation.
* **aggregate corruption** — a node reports an implausible
  ``<L, C, L_min>`` triple (negative load, zero capacity, stale epoch);
  the :class:`~repro.core.lbi.AggregateSanity` defense must quarantine
  it rather than let it poison the global aggregate.
* **network partition** — a :class:`PartitionSpec` splits the node set
  into components that cannot exchange protocol messages until a
  bounded heal; the ``repro.membership`` subsystem runs degraded
  per-component rounds and the deterministic heal protocol.
* **process crash** — a :class:`CrashPoint` kills the balancing
  *process itself* at a named protocol site
  (:data:`CRASH_SITES`); recovery restores the latest
  :class:`~repro.recovery.SystemSnapshot` and replays the journal tail
  (see :mod:`repro.recovery`), and must converge to the byte-identical
  round digest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FaultPlanError


def _check_probability(name: str, value: float) -> None:
    """Raise :class:`FaultPlanError` unless ``value`` is in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class PartitionSpec:
    """One seeded partition event on a fault plan.

    Like every other fault knob, a spec carries *intent* rather than
    decisions: the component assignment of a seeded split is drawn by
    the injector's partition stream at activation time, keeping the
    whole partition/heal history a pure function of
    ``(scenario seed, plan)``.

    Parameters
    ----------
    at_round:
        Balancing-round index (0-based) at which the partition strikes.
    duration:
        Number of rounds the partition lasts; the heal protocol runs at
        the start of round ``at_round + duration``.
    num_components:
        For a *seeded* split: how many components to cut the alive node
        set into (a seeded permutation split into near-equal chunks).
        Ignored when ``components`` is given explicitly.
    components:
        Optional explicit split: a tuple of node-index tuples.  Indices
        must be disjoint; alive nodes not listed join component 0.
    mid_round:
        When true the partition strikes *inside* round ``at_round``'s
        VST batch (at a seeded transfer slot) instead of at the round
        boundary — transfers whose endpoints land in different
        components are caught in flight and suspended until the heal.
    """

    at_round: int = 0
    duration: int = 1
    num_components: int = 2
    components: tuple[tuple[int, ...], ...] = ()
    mid_round: bool = False

    def __post_init__(self) -> None:
        """Validate every field; raises :class:`FaultPlanError`."""
        if self.at_round < 0:
            raise FaultPlanError(f"at_round must be >= 0, got {self.at_round}")
        if self.duration < 1:
            raise FaultPlanError(f"duration must be >= 1, got {self.duration}")
        if self.components:
            if len(self.components) < 2:
                raise FaultPlanError(
                    "an explicit split needs at least 2 components, got "
                    f"{len(self.components)}"
                )
            seen: set[int] = set()
            for component in self.components:
                if not component:
                    raise FaultPlanError("explicit components must be non-empty")
                for index in component:
                    if index < 0:
                        raise FaultPlanError(f"node index must be >= 0, got {index}")
                    if index in seen:
                        raise FaultPlanError(
                            f"node index {index} listed in two components"
                        )
                    seen.add(index)
        elif self.num_components < 2:
            raise FaultPlanError(
                f"num_components must be >= 2, got {self.num_components}"
            )

    @property
    def heal_round(self) -> int:
        """Round index at whose start the heal protocol runs."""
        return self.at_round + self.duration


#: The named protocol sites a :class:`CrashPoint` may target, in
#: protocol order within a round: after the LBI aggregate folds, at a
#: seeded slot inside the VST transfer batch, and just before the heal
#: protocol reconciles suspended transfers.
CRASH_SITES = ("post-lbi-fold", "mid-vst-batch", "pre-heal-commit")


@dataclass(frozen=True, slots=True)
class CrashPoint:
    """One scheduled whole-process crash on a fault plan.

    Deterministic per ``(at_round, site)``: the crash fires the first
    time the named site is reached in the given round (the only seeded
    element is the mid-VST batch slot, drawn from the injector's
    process-crash stream).  After recovery the site is disarmed, so the
    restored run passes it and completes the round.

    Parameters
    ----------
    at_round:
        Balancing-round index (0-based) in which the crash fires.
    site:
        One of :data:`CRASH_SITES`.
    """

    at_round: int = 0
    site: str = "mid-vst-batch"

    def __post_init__(self) -> None:
        """Validate both fields; raises :class:`FaultPlanError`."""
        if self.at_round < 0:
            raise FaultPlanError(f"at_round must be >= 0, got {self.at_round}")
        if self.site not in CRASH_SITES:
            raise FaultPlanError(
                f"unknown crash site {self.site!r}; expected one of "
                f"{', '.join(CRASH_SITES)}"
            )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Seeded, declarative description of one failure environment.

    Parameters
    ----------
    seed:
        Root seed of the injector's decision streams.  Independent of
        the scenario seed so the *same* fault sequence can be replayed
        against different workloads (and vice versa).
    drop:
        Per-message drop probability (LBI reports, VSA publications,
        heartbeats, tree-maintenance messages).
    delay:
        Per-message delay probability; a delayed message still arrives
        but consumes up to ``delay_max`` simulated time units of the
        phase budget.
    delay_max:
        Upper bound of the (uniform) injected delay, in simulated time
        units.
    duplicate:
        Per-message duplication probability; duplicates are detected at
        the receiver and suppressed, but cost a message.
    crash_mid_round:
        Number of physical-node crashes to inject per balancing round,
        placed at seeded positions inside the VST transfer batch (the
        worst possible moment: after classification, during movement).
    transfer_abort:
        Per-transfer probability that a virtual-server move aborts
        mid-flight and is rolled back by the two-phase VST commit.
    corrupt:
        Per-report probability that a node's LBI report is corrupted
        into an implausible ``<L, C, L_min>`` triple (seeded mode draw);
        exercises the aggregate sanity defense.
    partitions:
        Ordered, non-overlapping :class:`PartitionSpec` events; each
        must heal no later than the next one strikes.
    crash_points:
        Scheduled :class:`CrashPoint` whole-process crashes; at most
        one per ``(round, site)`` pair.
    """

    seed: int = 0
    drop: float = 0.0
    delay: float = 0.0
    delay_max: float = 3.0
    duplicate: float = 0.0
    crash_mid_round: int = 0
    transfer_abort: float = 0.0
    corrupt: float = 0.0
    partitions: tuple[PartitionSpec, ...] = ()
    crash_points: tuple[CrashPoint, ...] = ()

    def __post_init__(self) -> None:
        """Validate every knob; raises :class:`FaultPlanError`."""
        _check_probability("drop", self.drop)
        _check_probability("delay", self.delay)
        _check_probability("duplicate", self.duplicate)
        _check_probability("transfer_abort", self.transfer_abort)
        _check_probability("corrupt", self.corrupt)
        if self.delay_max < 0:
            raise FaultPlanError(f"delay_max must be >= 0, got {self.delay_max}")
        if self.crash_mid_round < 0:
            raise FaultPlanError(
                f"crash_mid_round must be >= 0, got {self.crash_mid_round}"
            )
        for prev, nxt in zip(self.partitions, self.partitions[1:]):
            if prev.heal_round > nxt.at_round:
                raise FaultPlanError(
                    "partition events must be ordered and non-overlapping: "
                    f"one heals at round {prev.heal_round} but the next "
                    f"strikes at round {nxt.at_round}"
                )
        seen_crashes: set[tuple[int, str]] = set()
        for point in self.crash_points:
            key = (point.at_round, point.site)
            if key in seen_crashes:
                raise FaultPlanError(
                    f"duplicate crash point at round {point.at_round}, "
                    f"site {point.site!r}"
                )
            seen_crashes.add(key)

    @property
    def is_null(self) -> bool:
        """Whether this plan injects nothing (the fault-free environment)."""
        return (
            self.drop == 0
            and self.delay == 0
            and self.duplicate == 0
            and self.crash_mid_round == 0
            and self.transfer_abort == 0
            and self.corrupt == 0
            and not self.partitions
            and not self.crash_points
        )


#: The fault-free environment: attach it anywhere a plan is accepted to
#: get exactly the failure-free behaviour (every decision stream still
#: exists, it just never fires).
NULL_PLAN = FaultPlan()
