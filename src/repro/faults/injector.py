"""The seeded decision engine that turns a :class:`FaultPlan` into faults.

A :class:`FaultInjector` owns one independent random stream per fault
channel (drop, delay, duplicate, node crash, abort, corruption,
partition, process crash), all spawned from
``plan.seed`` via the SeedSequence protocol — so the decision sequence
on one channel is unaffected by traffic on another, and the whole fault
history is a pure function of the plan.  Every decision that fires is
appended to :attr:`FaultInjector.log` and mirrored to the attached
observability layer (``faults.injected`` counter, per-kind counters,
one ``fault.inject`` trace event), and :meth:`FaultInjector.signature`
hashes the log so tests can assert two runs injected the *identical*
fault sequence byte for byte.

The injector only ever *decides*; the mechanics of acting on a decision
(dropping the report, rolling back the transfer, crashing the node)
stay with the protocol code, which keeps this package free of DHT
dependencies and lets any phase adopt a new channel without circular
imports.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ProcessCrashError
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer
from repro.util.rng import ensure_rng, spawn_rngs


class FaultKind(enum.Enum):
    """The injectable fault classes (see :class:`~repro.faults.FaultPlan`)."""

    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    CRASH = "crash"
    TRANSFER_ABORT = "transfer_abort"
    CORRUPT = "corrupt"
    PARTITION = "partition"
    HEAL = "heal"


@dataclass(frozen=True, slots=True)
class InjectedFault:
    """One fault that actually fired, in injection order.

    ``seq`` totals the injector's history; ``phase`` names the protocol
    surface the fault hit (``"lbi"``, ``"vsa"``, ``"vst"``,
    ``"heartbeat"``, ``"ktree"``); ``subject`` identifies the affected
    message/node/transfer within that phase.
    """

    seq: int
    kind: FaultKind
    phase: str
    subject: str

    def key(self) -> str:
        """Canonical string identity (the unit of the log signature)."""
        return f"{self.seq}:{self.kind.value}:{self.phase}:{self.subject}"


class FaultInjector:
    """Draws seeded fault decisions for one :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The declarative fault model; ``plan.seed`` roots every decision
        stream.
    tracer:
        Structured tracer for ``fault.inject`` events; defaults to the
        process-wide one.
    metrics:
        Registry accumulating ``faults.*`` counters; defaults to the
        process-wide one (``None`` = off).
    """

    def __init__(
        self,
        plan: FaultPlan,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Spawn the per-channel decision streams; see the class docstring."""
        self.plan = plan
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()
        # SeedSequence spawning is prefix-stable, so widening from 7 to
        # 8 streams left the first seven byte-identical to older plans.
        (
            self._drop_rng,
            self._delay_rng,
            self._dup_rng,
            self._crash_rng,
            self._abort_rng,
            self._corrupt_rng,
            self._partition_rng,
            self._process_crash_rng,
        ) = spawn_rngs(ensure_rng(plan.seed), 8)
        self.log: list[InjectedFault] = []
        self._crashes_left = plan.crash_mid_round
        self._component_of: dict[int, int] | None = None
        self._current_round = -1
        #: ``(round, site)`` pairs whose crash already fired (restored
        #: from journal crash markers after a recovery, so a revived
        #: process does not crash at the same site forever).
        self._fired_crashes: set[tuple[int, str]] = set()
        #: Rounds whose mid-VST batch slot was already drawn; a round
        #: may run several VST batches (partitioned components), but the
        #: crash slot belongs to the first one that asks.
        self._claimed_vst_crash: set[int] = set()

    # -- bookkeeping -----------------------------------------------------
    def _record(self, kind: FaultKind, phase: str, subject: str) -> None:
        fault = InjectedFault(
            seq=len(self.log), kind=kind, phase=phase, subject=subject
        )
        self.log.append(fault)
        if self.metrics is not None:
            self.metrics.counter("faults.injected").inc()
            self.metrics.counter(f"faults.{kind.value}").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "fault.inject",
                seq=fault.seq,
                kind=kind.value,
                phase=phase,
                subject=subject,
            )

    @property
    def injected(self) -> int:
        """Total faults injected so far."""
        return len(self.log)

    def signature(self) -> str:
        """SHA-256 over the ordered fault log (reproducibility witness).

        Two runs of the same scenario under the same plan must produce
        the same signature; the acceptance tests assert exactly that.
        """
        digest = hashlib.sha256()
        for fault in self.log:
            digest.update(fault.key().encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- message channels ------------------------------------------------
    def drop(self, phase: str, subject: str) -> bool:
        """Decide whether one message send is lost in flight."""
        if self.plan.drop <= 0:
            return False
        if float(self._drop_rng.random()) >= self.plan.drop:
            return False
        self._record(FaultKind.DROP, phase, subject)
        return True

    def delay(self, phase: str, subject: str) -> float:
        """Injected in-flight delay for one message (0.0 = on time)."""
        if self.plan.delay <= 0:
            return 0.0
        if float(self._delay_rng.random()) >= self.plan.delay:
            return 0.0
        self._record(FaultKind.DELAY, phase, subject)
        return float(self._delay_rng.random()) * self.plan.delay_max

    def duplicate(self, phase: str, subject: str) -> bool:
        """Decide whether one delivered message arrives twice."""
        if self.plan.duplicate <= 0:
            return False
        if float(self._dup_rng.random()) >= self.plan.duplicate:
            return False
        self._record(FaultKind.DUPLICATE, phase, subject)
        return True

    # -- transfer channel ------------------------------------------------
    def abort_transfer(self, vs_id: int) -> bool:
        """Decide whether one virtual-server move aborts mid-flight."""
        if self.plan.transfer_abort <= 0:
            return False
        if float(self._abort_rng.random()) >= self.plan.transfer_abort:
            return False
        self._record(FaultKind.TRANSFER_ABORT, "vst", f"vs={vs_id}")
        return True

    # -- corruption channel ----------------------------------------------
    #: Number of distinct corruption modes ``corrupt_report`` can draw
    #: (see :meth:`repro.core.lbi.AggregateSanity` for their meanings).
    NUM_CORRUPT_MODES = 5

    def corrupt_report(self, phase: str, subject: str) -> int | None:
        """Decide whether (and how) one LBI report is corrupted.

        Returns the seeded corruption mode in
        ``[0, NUM_CORRUPT_MODES)`` when the channel fires, ``None``
        otherwise.  The mode's meaning is owned by the sanity defense
        in :mod:`repro.core.lbi`.
        """
        if self.plan.corrupt <= 0:
            return None
        if float(self._corrupt_rng.random()) >= self.plan.corrupt:
            return None
        mode = int(self._corrupt_rng.integers(self.NUM_CORRUPT_MODES))
        self._record(FaultKind.CORRUPT, phase, f"{subject}:mode={mode}")
        return mode

    # -- partition channel -----------------------------------------------
    def partition_components(
        self, alive_indices: Sequence[int], num_components: int
    ) -> tuple[tuple[int, ...], ...]:
        """Seeded split of ``alive_indices`` into near-equal components.

        Draws one permutation from the partition stream and cuts it
        into ``num_components`` contiguous chunks (larger chunks
        first); each chunk is returned sorted.  Purely a decision —
        recording happens via :meth:`record_partition` once the
        membership layer activates the split.
        """
        indices = [int(i) for i in alive_indices]
        perm = self._partition_rng.permutation(len(indices))
        shuffled = [indices[int(p)] for p in perm]
        base, extra = divmod(len(shuffled), num_components)
        components: list[tuple[int, ...]] = []
        cursor = 0
        for c in range(num_components):
            size = base + (1 if c < extra else 0)
            chunk = shuffled[cursor : cursor + size]
            cursor += size
            if chunk:
                components.append(tuple(sorted(chunk)))
        return tuple(components)

    def partition_slot(self, num_slots: int) -> int:
        """Seeded VST-batch position (``[0, num_slots]``) for a mid-round cut."""
        return int(self._partition_rng.integers(0, num_slots + 1))

    def record_partition(
        self, epoch: int, components: tuple[tuple[int, ...], ...]
    ) -> None:
        """Log a partition activation into the signed fault history."""
        shape = "/".join(str(len(c)) for c in components)
        self._record(
            FaultKind.PARTITION, "membership", f"epoch={epoch}:shape={shape}"
        )

    def record_heal(self, epoch: int, commits: int, rollbacks: int) -> None:
        """Log a heal (with its transfer reconciliation tally)."""
        self._record(
            FaultKind.HEAL,
            "membership",
            f"epoch={epoch}:commits={commits}:rollbacks={rollbacks}",
        )

    def set_partition(self, assignment: dict[int, int] | None) -> None:
        """Install (or clear) the node-index → component map used by
        :meth:`blocked`.  Consumes no randomness and writes no log
        entries — only activation/heal events are signed.
        """
        self._component_of = dict(assignment) if assignment is not None else None

    @property
    def partition_active(self) -> bool:
        """Whether a component map is currently installed."""
        return self._component_of is not None

    def component_of(self, node_index: int) -> int:
        """Component id of a node under the active partition (0 if none)."""
        if self._component_of is None:
            return 0
        return self._component_of.get(node_index, 0)

    def blocked(self, phase: str, src_index: int, dst_index: int) -> bool:
        """Whether a message between two nodes crosses the partition.

        A pure membership lookup: consumes no randomness and logs
        nothing (the partition itself is already in the signed log),
        but counts blocked deliveries for observability.
        """
        if self._component_of is None:
            return False
        if self.component_of(src_index) == self.component_of(dst_index):
            return False
        if self.metrics is not None:
            self.metrics.counter("faults.partition_blocked").inc()
        return True

    # -- crash channel ---------------------------------------------------
    def plan_crash_slots(self, num_slots: int) -> list[int]:
        """Seeded positions (in ``[0, num_slots]``) for this round's crashes.

        One slot per remaining crash in the plan's budget; slot ``k``
        means "crash after the ``k``-th transfer of the VST batch" (slot
        0 = before any transfer executes).  Slots are drawn without
        consuming the budget — :meth:`pick_victim` consumes it when a
        crash actually lands.
        """
        if self._crashes_left <= 0:
            return []
        draws = self._crash_rng.integers(
            0, num_slots + 1, size=self._crashes_left
        )
        return sorted(int(d) for d in draws)

    def pick_victim(self, candidates: Sequence[int]) -> int | None:
        """Choose (and log) the node index to crash, or ``None``.

        Consumes one unit of the plan's ``crash_mid_round`` budget; an
        empty candidate list wastes the slot without crashing anyone.
        """
        if self._crashes_left <= 0:
            return None
        self._crashes_left -= 1
        if not candidates:
            return None
        victim = int(candidates[int(self._crash_rng.integers(len(candidates)))])
        self._record(FaultKind.CRASH, "vst", f"node={victim}")
        return victim

    @property
    def crashes_remaining(self) -> int:
        """Crash budget not yet consumed this round."""
        return self._crashes_left

    def reset_round(self, round_index: int | None = None) -> None:
        """Re-arm per-round budgets and advance the round cursor.

        ``round_index`` anchors the process-crash machinery to the
        balancer's round numbering; omitted (legacy callers), the
        cursor simply advances by one.
        """
        self._crashes_left = self.plan.crash_mid_round
        if round_index is not None:
            self._current_round = round_index
        else:
            self._current_round += 1

    # -- process-crash channel --------------------------------------------
    @property
    def current_round(self) -> int:
        """The round index the injector is currently armed for."""
        return self._current_round

    def crash_due(self, site: str) -> bool:
        """Whether a :class:`~repro.faults.CrashPoint` is armed here.

        True iff the plan schedules a crash for ``(current round,
        site)`` and it has not already fired (it is disarmed after a
        recovery via :meth:`disarm_crash`).  Consumes no randomness and
        writes no log entries: the fault signature of a crashed-and-
        recovered run must match the uncrashed run's byte for byte.
        """
        key = (self._current_round, site)
        if key in self._fired_crashes:
            return False
        return any(
            p.at_round == self._current_round and p.site == site
            for p in self.plan.crash_points
        )

    def process_crash_slot(self, num_slots: int) -> int | None:
        """Seeded VST-batch position for an armed mid-batch process crash.

        Returns a slot in ``[0, num_slots]`` (``k`` = crash before the
        ``k``-th transfer executes, ``num_slots`` = after the batch)
        drawn from the dedicated process-crash stream, or ``None`` when
        no ``mid-vst-batch`` crash is armed this round.  The slot is
        claimed once per round — later batches of the same round (e.g.
        per-component VST under a partition) see ``None`` — so the
        draw sequence is a pure function of the plan.
        """
        if not self.crash_due("mid-vst-batch"):
            return None
        if self._current_round in self._claimed_vst_crash:
            return None
        self._claimed_vst_crash.add(self._current_round)
        return int(self._process_crash_rng.integers(0, num_slots + 1))

    def fire_crash(self, site: str) -> None:
        """Kill the process at ``site`` (raises, never returns normally).

        Marks the ``(round, site)`` pair fired and raises
        :class:`~repro.exceptions.ProcessCrashError` for the recovery
        layer to catch.  Deliberately *not* recorded in :attr:`log` —
        see :meth:`crash_due` — though it is traced and counted.
        """
        key = (self._current_round, site)
        self._fired_crashes.add(key)
        if self.metrics is not None:
            self.metrics.counter("faults.process_crash").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "fault.process_crash", round=self._current_round, site=site
            )
        raise ProcessCrashError(self._current_round, site)

    def disarm_crash(self, round_index: int, site: str) -> None:
        """Mark a crash point as already fired (journal-driven recovery).

        Called by the recovery manager for every crash marker found in
        the journal tail, so a restored process — including one revived
        in a fresh interpreter — does not re-fire the same crash.
        """
        self._fired_crashes.add((round_index, site))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(plan={self.plan!r}, injected={self.injected}, "
            f"crashes_left={self._crashes_left})"
        )


def ensure_injector(
    faults: FaultPlan | FaultInjector | None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> FaultInjector | None:
    """Coerce a plan-or-injector argument into an injector (or ``None``).

    Accepting either form everywhere mirrors the ``rng`` convention
    (:func:`repro.util.rng.ensure_rng`): pass a plan for the common
    case, pass a pre-built injector to share one fault history across
    components.  A null plan yields ``None`` so fault-free runs keep
    the exact fast paths.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if faults.is_null:
        return None
    return FaultInjector(faults, tracer=tracer, metrics=metrics)
