"""The seeded decision engine that turns a :class:`FaultPlan` into faults.

A :class:`FaultInjector` owns one independent random stream per fault
channel (drop, delay, duplicate, crash, abort), all spawned from
``plan.seed`` via the SeedSequence protocol — so the decision sequence
on one channel is unaffected by traffic on another, and the whole fault
history is a pure function of the plan.  Every decision that fires is
appended to :attr:`FaultInjector.log` and mirrored to the attached
observability layer (``faults.injected`` counter, per-kind counters,
one ``fault.inject`` trace event), and :meth:`FaultInjector.signature`
hashes the log so tests can assert two runs injected the *identical*
fault sequence byte for byte.

The injector only ever *decides*; the mechanics of acting on a decision
(dropping the report, rolling back the transfer, crashing the node)
stay with the protocol code, which keeps this package free of DHT
dependencies and lets any phase adopt a new channel without circular
imports.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer
from repro.util.rng import ensure_rng, spawn_rngs


class FaultKind(enum.Enum):
    """The injectable fault classes (see :class:`~repro.faults.FaultPlan`)."""

    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    CRASH = "crash"
    TRANSFER_ABORT = "transfer_abort"
    CORRUPT = "corrupt"
    PARTITION = "partition"
    HEAL = "heal"


@dataclass(frozen=True, slots=True)
class InjectedFault:
    """One fault that actually fired, in injection order.

    ``seq`` totals the injector's history; ``phase`` names the protocol
    surface the fault hit (``"lbi"``, ``"vsa"``, ``"vst"``,
    ``"heartbeat"``, ``"ktree"``); ``subject`` identifies the affected
    message/node/transfer within that phase.
    """

    seq: int
    kind: FaultKind
    phase: str
    subject: str

    def key(self) -> str:
        """Canonical string identity (the unit of the log signature)."""
        return f"{self.seq}:{self.kind.value}:{self.phase}:{self.subject}"


class FaultInjector:
    """Draws seeded fault decisions for one :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The declarative fault model; ``plan.seed`` roots every decision
        stream.
    tracer:
        Structured tracer for ``fault.inject`` events; defaults to the
        process-wide one.
    metrics:
        Registry accumulating ``faults.*`` counters; defaults to the
        process-wide one (``None`` = off).
    """

    def __init__(
        self,
        plan: FaultPlan,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Spawn the per-channel decision streams; see the class docstring."""
        self.plan = plan
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()
        (
            self._drop_rng,
            self._delay_rng,
            self._dup_rng,
            self._crash_rng,
            self._abort_rng,
            self._corrupt_rng,
            self._partition_rng,
        ) = spawn_rngs(ensure_rng(plan.seed), 7)
        self.log: list[InjectedFault] = []
        self._crashes_left = plan.crash_mid_round
        self._component_of: dict[int, int] | None = None

    # -- bookkeeping -----------------------------------------------------
    def _record(self, kind: FaultKind, phase: str, subject: str) -> None:
        fault = InjectedFault(
            seq=len(self.log), kind=kind, phase=phase, subject=subject
        )
        self.log.append(fault)
        if self.metrics is not None:
            self.metrics.counter("faults.injected").inc()
            self.metrics.counter(f"faults.{kind.value}").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "fault.inject",
                seq=fault.seq,
                kind=kind.value,
                phase=phase,
                subject=subject,
            )

    @property
    def injected(self) -> int:
        """Total faults injected so far."""
        return len(self.log)

    def signature(self) -> str:
        """SHA-256 over the ordered fault log (reproducibility witness).

        Two runs of the same scenario under the same plan must produce
        the same signature; the acceptance tests assert exactly that.
        """
        digest = hashlib.sha256()
        for fault in self.log:
            digest.update(fault.key().encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- message channels ------------------------------------------------
    def drop(self, phase: str, subject: str) -> bool:
        """Decide whether one message send is lost in flight."""
        if self.plan.drop <= 0:
            return False
        if float(self._drop_rng.random()) >= self.plan.drop:
            return False
        self._record(FaultKind.DROP, phase, subject)
        return True

    def delay(self, phase: str, subject: str) -> float:
        """Injected in-flight delay for one message (0.0 = on time)."""
        if self.plan.delay <= 0:
            return 0.0
        if float(self._delay_rng.random()) >= self.plan.delay:
            return 0.0
        self._record(FaultKind.DELAY, phase, subject)
        return float(self._delay_rng.random()) * self.plan.delay_max

    def duplicate(self, phase: str, subject: str) -> bool:
        """Decide whether one delivered message arrives twice."""
        if self.plan.duplicate <= 0:
            return False
        if float(self._dup_rng.random()) >= self.plan.duplicate:
            return False
        self._record(FaultKind.DUPLICATE, phase, subject)
        return True

    # -- transfer channel ------------------------------------------------
    def abort_transfer(self, vs_id: int) -> bool:
        """Decide whether one virtual-server move aborts mid-flight."""
        if self.plan.transfer_abort <= 0:
            return False
        if float(self._abort_rng.random()) >= self.plan.transfer_abort:
            return False
        self._record(FaultKind.TRANSFER_ABORT, "vst", f"vs={vs_id}")
        return True

    # -- corruption channel ----------------------------------------------
    #: Number of distinct corruption modes ``corrupt_report`` can draw
    #: (see :meth:`repro.core.lbi.AggregateSanity` for their meanings).
    NUM_CORRUPT_MODES = 5

    def corrupt_report(self, phase: str, subject: str) -> int | None:
        """Decide whether (and how) one LBI report is corrupted.

        Returns the seeded corruption mode in
        ``[0, NUM_CORRUPT_MODES)`` when the channel fires, ``None``
        otherwise.  The mode's meaning is owned by the sanity defense
        in :mod:`repro.core.lbi`.
        """
        if self.plan.corrupt <= 0:
            return None
        if float(self._corrupt_rng.random()) >= self.plan.corrupt:
            return None
        mode = int(self._corrupt_rng.integers(self.NUM_CORRUPT_MODES))
        self._record(FaultKind.CORRUPT, phase, f"{subject}:mode={mode}")
        return mode

    # -- partition channel -----------------------------------------------
    def partition_components(
        self, alive_indices: Sequence[int], num_components: int
    ) -> tuple[tuple[int, ...], ...]:
        """Seeded split of ``alive_indices`` into near-equal components.

        Draws one permutation from the partition stream and cuts it
        into ``num_components`` contiguous chunks (larger chunks
        first); each chunk is returned sorted.  Purely a decision —
        recording happens via :meth:`record_partition` once the
        membership layer activates the split.
        """
        indices = [int(i) for i in alive_indices]
        perm = self._partition_rng.permutation(len(indices))
        shuffled = [indices[int(p)] for p in perm]
        base, extra = divmod(len(shuffled), num_components)
        components: list[tuple[int, ...]] = []
        cursor = 0
        for c in range(num_components):
            size = base + (1 if c < extra else 0)
            chunk = shuffled[cursor : cursor + size]
            cursor += size
            if chunk:
                components.append(tuple(sorted(chunk)))
        return tuple(components)

    def partition_slot(self, num_slots: int) -> int:
        """Seeded VST-batch position (``[0, num_slots]``) for a mid-round cut."""
        return int(self._partition_rng.integers(0, num_slots + 1))

    def record_partition(
        self, epoch: int, components: tuple[tuple[int, ...], ...]
    ) -> None:
        """Log a partition activation into the signed fault history."""
        shape = "/".join(str(len(c)) for c in components)
        self._record(
            FaultKind.PARTITION, "membership", f"epoch={epoch}:shape={shape}"
        )

    def record_heal(self, epoch: int, commits: int, rollbacks: int) -> None:
        """Log a heal (with its transfer reconciliation tally)."""
        self._record(
            FaultKind.HEAL,
            "membership",
            f"epoch={epoch}:commits={commits}:rollbacks={rollbacks}",
        )

    def set_partition(self, assignment: dict[int, int] | None) -> None:
        """Install (or clear) the node-index → component map used by
        :meth:`blocked`.  Consumes no randomness and writes no log
        entries — only activation/heal events are signed.
        """
        self._component_of = dict(assignment) if assignment is not None else None

    @property
    def partition_active(self) -> bool:
        """Whether a component map is currently installed."""
        return self._component_of is not None

    def component_of(self, node_index: int) -> int:
        """Component id of a node under the active partition (0 if none)."""
        if self._component_of is None:
            return 0
        return self._component_of.get(node_index, 0)

    def blocked(self, phase: str, src_index: int, dst_index: int) -> bool:
        """Whether a message between two nodes crosses the partition.

        A pure membership lookup: consumes no randomness and logs
        nothing (the partition itself is already in the signed log),
        but counts blocked deliveries for observability.
        """
        if self._component_of is None:
            return False
        if self.component_of(src_index) == self.component_of(dst_index):
            return False
        if self.metrics is not None:
            self.metrics.counter("faults.partition_blocked").inc()
        return True

    # -- crash channel ---------------------------------------------------
    def plan_crash_slots(self, num_slots: int) -> list[int]:
        """Seeded positions (in ``[0, num_slots]``) for this round's crashes.

        One slot per remaining crash in the plan's budget; slot ``k``
        means "crash after the ``k``-th transfer of the VST batch" (slot
        0 = before any transfer executes).  Slots are drawn without
        consuming the budget — :meth:`pick_victim` consumes it when a
        crash actually lands.
        """
        if self._crashes_left <= 0:
            return []
        draws = self._crash_rng.integers(
            0, num_slots + 1, size=self._crashes_left
        )
        return sorted(int(d) for d in draws)

    def pick_victim(self, candidates: Sequence[int]) -> int | None:
        """Choose (and log) the node index to crash, or ``None``.

        Consumes one unit of the plan's ``crash_mid_round`` budget; an
        empty candidate list wastes the slot without crashing anyone.
        """
        if self._crashes_left <= 0:
            return None
        self._crashes_left -= 1
        if not candidates:
            return None
        victim = int(candidates[int(self._crash_rng.integers(len(candidates)))])
        self._record(FaultKind.CRASH, "vst", f"node={victim}")
        return victim

    @property
    def crashes_remaining(self) -> int:
        """Crash budget not yet consumed this round."""
        return self._crashes_left

    def reset_round(self) -> None:
        """Re-arm per-round budgets (the crash count) for the next round."""
        self._crashes_left = self.plan.crash_mid_round

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(plan={self.plan!r}, injected={self.injected}, "
            f"crashes_left={self._crashes_left})"
        )


def ensure_injector(
    faults: FaultPlan | FaultInjector | None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> FaultInjector | None:
    """Coerce a plan-or-injector argument into an injector (or ``None``).

    Accepting either form everywhere mirrors the ``rng`` convention
    (:func:`repro.util.rng.ensure_rng`): pass a plan for the common
    case, pass a pre-built injector to share one fault history across
    components.  A null plan yields ``None`` so fault-free runs keep
    the exact fast paths.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if faults.is_null:
        return None
    return FaultInjector(faults, tracer=tracer, metrics=metrics)
