"""The seeded decision engine that turns a :class:`FaultPlan` into faults.

A :class:`FaultInjector` owns one independent random stream per fault
channel (drop, delay, duplicate, crash, abort), all spawned from
``plan.seed`` via the SeedSequence protocol — so the decision sequence
on one channel is unaffected by traffic on another, and the whole fault
history is a pure function of the plan.  Every decision that fires is
appended to :attr:`FaultInjector.log` and mirrored to the attached
observability layer (``faults.injected`` counter, per-kind counters,
one ``fault.inject`` trace event), and :meth:`FaultInjector.signature`
hashes the log so tests can assert two runs injected the *identical*
fault sequence byte for byte.

The injector only ever *decides*; the mechanics of acting on a decision
(dropping the report, rolling back the transfer, crashing the node)
stay with the protocol code, which keeps this package free of DHT
dependencies and lets any phase adopt a new channel without circular
imports.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, current_tracer
from repro.obs.trace import Tracer
from repro.util.rng import ensure_rng, spawn_rngs


class FaultKind(enum.Enum):
    """The injectable fault classes (see :class:`~repro.faults.FaultPlan`)."""

    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    CRASH = "crash"
    TRANSFER_ABORT = "transfer_abort"


@dataclass(frozen=True, slots=True)
class InjectedFault:
    """One fault that actually fired, in injection order.

    ``seq`` totals the injector's history; ``phase`` names the protocol
    surface the fault hit (``"lbi"``, ``"vsa"``, ``"vst"``,
    ``"heartbeat"``, ``"ktree"``); ``subject`` identifies the affected
    message/node/transfer within that phase.
    """

    seq: int
    kind: FaultKind
    phase: str
    subject: str

    def key(self) -> str:
        """Canonical string identity (the unit of the log signature)."""
        return f"{self.seq}:{self.kind.value}:{self.phase}:{self.subject}"


class FaultInjector:
    """Draws seeded fault decisions for one :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The declarative fault model; ``plan.seed`` roots every decision
        stream.
    tracer:
        Structured tracer for ``fault.inject`` events; defaults to the
        process-wide one.
    metrics:
        Registry accumulating ``faults.*`` counters; defaults to the
        process-wide one (``None`` = off).
    """

    def __init__(
        self,
        plan: FaultPlan,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Spawn the per-channel decision streams; see the class docstring."""
        self.plan = plan
        self.tracer = tracer if tracer is not None else current_tracer()
        self.metrics = metrics if metrics is not None else current_metrics()
        (
            self._drop_rng,
            self._delay_rng,
            self._dup_rng,
            self._crash_rng,
            self._abort_rng,
        ) = spawn_rngs(ensure_rng(plan.seed), 5)
        self.log: list[InjectedFault] = []
        self._crashes_left = plan.crash_mid_round

    # -- bookkeeping -----------------------------------------------------
    def _record(self, kind: FaultKind, phase: str, subject: str) -> None:
        fault = InjectedFault(
            seq=len(self.log), kind=kind, phase=phase, subject=subject
        )
        self.log.append(fault)
        if self.metrics is not None:
            self.metrics.counter("faults.injected").inc()
            self.metrics.counter(f"faults.{kind.value}").inc()
        if self.tracer.enabled:
            self.tracer.event(
                "fault.inject",
                seq=fault.seq,
                kind=kind.value,
                phase=phase,
                subject=subject,
            )

    @property
    def injected(self) -> int:
        """Total faults injected so far."""
        return len(self.log)

    def signature(self) -> str:
        """SHA-256 over the ordered fault log (reproducibility witness).

        Two runs of the same scenario under the same plan must produce
        the same signature; the acceptance tests assert exactly that.
        """
        digest = hashlib.sha256()
        for fault in self.log:
            digest.update(fault.key().encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- message channels ------------------------------------------------
    def drop(self, phase: str, subject: str) -> bool:
        """Decide whether one message send is lost in flight."""
        if self.plan.drop <= 0:
            return False
        if float(self._drop_rng.random()) >= self.plan.drop:
            return False
        self._record(FaultKind.DROP, phase, subject)
        return True

    def delay(self, phase: str, subject: str) -> float:
        """Injected in-flight delay for one message (0.0 = on time)."""
        if self.plan.delay <= 0:
            return 0.0
        if float(self._delay_rng.random()) >= self.plan.delay:
            return 0.0
        self._record(FaultKind.DELAY, phase, subject)
        return float(self._delay_rng.random()) * self.plan.delay_max

    def duplicate(self, phase: str, subject: str) -> bool:
        """Decide whether one delivered message arrives twice."""
        if self.plan.duplicate <= 0:
            return False
        if float(self._dup_rng.random()) >= self.plan.duplicate:
            return False
        self._record(FaultKind.DUPLICATE, phase, subject)
        return True

    # -- transfer channel ------------------------------------------------
    def abort_transfer(self, vs_id: int) -> bool:
        """Decide whether one virtual-server move aborts mid-flight."""
        if self.plan.transfer_abort <= 0:
            return False
        if float(self._abort_rng.random()) >= self.plan.transfer_abort:
            return False
        self._record(FaultKind.TRANSFER_ABORT, "vst", f"vs={vs_id}")
        return True

    # -- crash channel ---------------------------------------------------
    def plan_crash_slots(self, num_slots: int) -> list[int]:
        """Seeded positions (in ``[0, num_slots]``) for this round's crashes.

        One slot per remaining crash in the plan's budget; slot ``k``
        means "crash after the ``k``-th transfer of the VST batch" (slot
        0 = before any transfer executes).  Slots are drawn without
        consuming the budget — :meth:`pick_victim` consumes it when a
        crash actually lands.
        """
        if self._crashes_left <= 0:
            return []
        draws = self._crash_rng.integers(
            0, num_slots + 1, size=self._crashes_left
        )
        return sorted(int(d) for d in draws)

    def pick_victim(self, candidates: Sequence[int]) -> int | None:
        """Choose (and log) the node index to crash, or ``None``.

        Consumes one unit of the plan's ``crash_mid_round`` budget; an
        empty candidate list wastes the slot without crashing anyone.
        """
        if self._crashes_left <= 0:
            return None
        self._crashes_left -= 1
        if not candidates:
            return None
        victim = int(candidates[int(self._crash_rng.integers(len(candidates)))])
        self._record(FaultKind.CRASH, "vst", f"node={victim}")
        return victim

    @property
    def crashes_remaining(self) -> int:
        """Crash budget not yet consumed this round."""
        return self._crashes_left

    def reset_round(self) -> None:
        """Re-arm per-round budgets (the crash count) for the next round."""
        self._crashes_left = self.plan.crash_mid_round

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(plan={self.plan!r}, injected={self.injected}, "
            f"crashes_left={self._crashes_left})"
        )


def ensure_injector(
    faults: FaultPlan | FaultInjector | None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> FaultInjector | None:
    """Coerce a plan-or-injector argument into an injector (or ``None``).

    Accepting either form everywhere mirrors the ``rng`` convention
    (:func:`repro.util.rng.ensure_rng`): pass a plan for the common
    case, pass a pre-built injector to share one fault history across
    components.  A null plan yields ``None`` so fault-free runs keep
    the exact fast paths.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if faults.is_null:
        return None
    return FaultInjector(faults, tracer=tracer, metrics=metrics)
