"""Per-round accounting of injected faults and the recovery they forced.

One :class:`FaultRoundStats` instance rides on each
:class:`~repro.core.report.BalanceReport` produced under a fault plan,
so experiments can correlate the injected failure environment with the
achieved balancing quality (the chaos sweep's whole point: measure
graceful degradation instead of asserting it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class FaultRoundStats:
    """What went wrong — and what the recovery machinery did about it.

    ``*_retries`` count *extra* sends beyond the first attempt;
    ``*_lost`` count messages that stayed lost after every retry;
    ``*_delay`` accumulate the simulated time burned on backoff and
    injected latency.  ``crashed_nodes`` lists the indices crashed
    mid-round, ``stale_lbi_reused`` records the degraded-mode decision,
    and ``signature`` is the injector's fault-log hash at round end.

    The partition fields track the membership layer: ``epoch`` is the
    view number the round ran under, ``partition_components`` how many
    components it split into (0 = no partition), ``suspended_transfers``
    the in-flight moves parked by a mid-round cut, ``healed_commits`` /
    ``healed_rollbacks`` the heal protocol's reconciliation tally,
    ``regrafts`` the subtrees re-grafted at heal, and
    ``quarantined_nodes`` the indices whose LBI reports failed the
    aggregate sanity defense this round.
    """

    lbi_retries: int = 0
    lbi_reports_lost: int = 0
    lbi_duplicates: int = 0
    lbi_delay: float = 0.0
    vsa_retries: int = 0
    vsa_entries_lost: int = 0
    vsa_duplicates: int = 0
    vsa_delay: float = 0.0
    vst_rollbacks: int = 0
    vst_failed: int = 0
    crashed_nodes: list[int] = field(default_factory=list)
    stale_lbi_reused: bool = False
    injected_total: int = 0
    signature: str = ""
    epoch: int = 0
    partition_components: int = 0
    suspended_transfers: int = 0
    healed_commits: int = 0
    healed_rollbacks: int = 0
    regrafts: int = 0
    quarantined_nodes: list[int] = field(default_factory=list)

    @property
    def total_retries(self) -> int:
        """Extra message sends across all phases."""
        return self.lbi_retries + self.vsa_retries

    @property
    def total_lost(self) -> int:
        """Messages that exhausted their retry/timeout budgets."""
        return self.lbi_reports_lost + self.vsa_entries_lost

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly digest (what the chaos experiment exports)."""
        return {
            "lbi_retries": self.lbi_retries,
            "lbi_reports_lost": self.lbi_reports_lost,
            "lbi_duplicates": self.lbi_duplicates,
            "vsa_retries": self.vsa_retries,
            "vsa_entries_lost": self.vsa_entries_lost,
            "vsa_duplicates": self.vsa_duplicates,
            "vst_rollbacks": self.vst_rollbacks,
            "vst_failed": self.vst_failed,
            "crashed_nodes": list(self.crashed_nodes),
            "stale_lbi_reused": self.stale_lbi_reused,
            "injected_total": self.injected_total,
            "signature": self.signature,
            "epoch": self.epoch,
            "partition_components": self.partition_components,
            "suspended_transfers": self.suspended_transfers,
            "healed_commits": self.healed_commits,
            "healed_rollbacks": self.healed_rollbacks,
            "regrafts": self.regrafts,
            "quarantined_nodes": list(self.quarantined_nodes),
        }
