"""Fault injection and degraded-mode recovery for the balancing protocol.

The paper's reliability story (Section 3.1.1) is that the K-nary tree
self-repairs and the balancer keeps working under churn.  This package
makes that claim *testable*: a seeded :class:`FaultPlan` describes a
failure environment (message drop/delay/duplication, mid-round node
crashes, transfer aborts), a :class:`FaultInjector` turns it into a
deterministic fault sequence, and a :class:`RetryPolicy` bounds the
recovery machinery (exponential backoff with seeded jitter, per-phase
timeout budgets, an explicit staleness bound for reused LBI aggregates)
that lets a round survive it.

Typical use::

    from repro.app import P2PSystem, SystemConfig
    from repro.faults import FaultPlan

    system = P2PSystem(
        SystemConfig(initial_nodes=32, seed=7),
        faults=FaultPlan(seed=3, drop=0.1, crash_mid_round=1),
    )
    report = system.rebalance()          # completes; conservation holds
    print(report.fault_stats.to_dict())  # retries, rollbacks, crashes

Determinism contract: the fault sequence — and therefore the final
loads — is a pure function of ``(scenario seed, plan)``.  Two runs with
identical seeds inject byte-for-byte identical faults
(:meth:`FaultInjector.signature` is the witness).
"""

from repro.faults.injector import (
    FaultInjector,
    FaultKind,
    InjectedFault,
    ensure_injector,
)
from repro.faults.plan import (
    CRASH_SITES,
    NULL_PLAN,
    CrashPoint,
    FaultPlan,
    PartitionSpec,
)
from repro.faults.retry import (
    JITTER_MODES,
    DeliveryOutcome,
    RetryBudget,
    RetryPolicy,
    deliver_with_retry,
)
from repro.faults.stats import FaultRoundStats

__all__ = [
    "CRASH_SITES",
    "JITTER_MODES",
    "NULL_PLAN",
    "CrashPoint",
    "DeliveryOutcome",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRoundStats",
    "InjectedFault",
    "PartitionSpec",
    "RetryBudget",
    "RetryPolicy",
    "deliver_with_retry",
    "ensure_injector",
]
