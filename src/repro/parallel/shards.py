"""Shard geometry: mapping KT nodes to depth-``d`` subtree prefixes.

A *shard* is one depth-``d`` subtree of the K-nary tree; there are
``S = K**d`` of them and each covers a contiguous ``1/S`` slice of the
identifier space.  Shards are identified by their *path* — the tuple of
child indices walked from the root — and ordered by that path
interpreted as a base-``K`` number, which is also identifier-space
order (child ``i`` covers the ``i``-th sub-interval of its parent).

These helpers are pure tree/arithmetic functions; nothing here touches
processes, rngs or wall clocks.

They are view-agnostic: a tree built over a partition component or a
Byzantine-quarantine work ring (both
:class:`~repro.membership.views.ComponentRingView`) still tiles the
full identifier space, so the same prefix geometry shards it — which is
how the sharded engine inherits serial byte-identity under partitions
and under an active :class:`~repro.adversary.AdversaryPlan` alike.
"""

from __future__ import annotations

from repro.exceptions import ConfigError
from repro.ktree.node import KTNode

#: Path type used throughout the parallel subsystem: child indices from
#: the root down (the root itself is the empty tuple).
Path = tuple[int, ...]


def shard_depth(num_shards: int, tree_degree: int) -> int:
    """The subtree depth ``d`` with ``tree_degree ** d == num_shards``.

    Shards must tile the identifier space exactly, so the shard count
    has to be an integer power of the tree degree (``1`` gives depth 0:
    a single shard spanning the whole space).  Raises
    :class:`~repro.exceptions.ConfigError` otherwise.
    """
    if num_shards < 1:
        raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
    if tree_degree < 2:
        raise ConfigError(f"tree_degree must be >= 2, got {tree_degree}")
    depth = 0
    total = 1
    while total < num_shards:
        total *= tree_degree
        depth += 1
    if total != num_shards:
        raise ConfigError(
            f"num_shards must be a power of tree_degree "
            f"({tree_degree}); got {num_shards}"
        )
    return depth


def path_of(node: KTNode) -> Path:
    """The child-index path from the tree root down to ``node``.

    Paths key all cross-process communication: worker tasks carry paths
    instead of :class:`~repro.ktree.node.KTNode` references (nodes hold
    parent links and regions — picklable but heavy, and object identity
    would not survive the process boundary anyway).
    """
    parts: list[int] = []
    current = node
    while current.parent is not None:
        parts.append(current.parent.children.index(current))
        current = current.parent
    parts.reverse()
    return tuple(parts)


def descending_path_key(path: Path) -> Path:
    """Sort key placing equal-length paths in descending path order.

    Sorting ascending by the negated child indices visits same-level KT
    nodes in the order the serial bottom-up sweeps do (preorder with
    children pushed ascending and popped in reverse).  The incremental
    engine's :meth:`repro.ktree.index.TreeIndex.heap_key` is the
    slot-array form of the same ordering.
    """
    return tuple(-part for part in path)


def descending_paths(paths: list[Path]) -> list[Path]:
    """Equal-length paths sorted into descending path (serial sweep) order."""
    return sorted(paths, key=descending_path_key)


def shard_index(path: Path, depth: int, tree_degree: int) -> int:
    """The shard number of ``path``'s depth-``depth`` prefix.

    Interprets the prefix as a base-``tree_degree`` numeral, which
    equals the shard's rank in identifier-space order.  ``path`` must be
    at least ``depth`` long.
    """
    if len(path) < depth:
        raise ConfigError(
            f"path {path!r} is above shard depth {depth}; cannot assign a shard"
        )
    index = 0
    for part in path[:depth]:
        index = index * tree_degree + part
    return index
