"""Shard-parallel balancing rounds and a parallel experiment trial engine.

The KT aggregation is naturally partition-parallel: every depth-``d``
subtree covers a contiguous identifier-space interval and folds its
``<L, C, L_min>`` aggregate — and runs its sub-threshold rendezvous
sweep — without looking outside the subtree.  This package exploits
that structure on two layers:

* :class:`ShardedLoadBalancer` splits the identifier space into
  ``S = K**d`` contiguous shards, dispatches the per-shard LBI fold and
  VSA sweep to worker processes through a :class:`WorkerPool`, and
  merges shard results at the super-root exactly as KT parents merge
  children — so serial mode, ``S=1`` and ``S>1`` produce byte-identical
  :class:`~repro.core.report.BalanceReport`\\ s (asserted in terms of
  :meth:`~repro.core.report.BalanceReport.canonical_digest`).
* :class:`TrialExecutor` fans experiment seed sweeps (variance, chaos,
  figure benches) across worker processes, each trial under a fresh
  :class:`~repro.obs.metrics.MetricsRegistry` that is merged back into
  the caller's registry in trial order.

Everything rng-, fault- or materialisation-dependent stays on the
parent process; workers only ever see pure, picklable, path-keyed
tasks.  See ``docs/parallelism.md`` for the determinism contract.
"""

from repro.parallel.engine import ShardedLoadBalancer
from repro.parallel.pool import WorkerPool
from repro.parallel.shards import path_of, shard_depth, shard_index
from repro.parallel.shardwork import (
    LBIShardResult,
    LBIShardTask,
    ShardSweepResult,
    VSAShardTask,
    fold_lbi_paths,
    lbi_shard_worker,
    sweep_paths,
    vsa_shard_worker,
)
from repro.parallel.trials import (
    TrialExecutor,
    TrialTask,
    run_trial_worker,
    spawn_trial_seeds,
)

__all__ = [
    "LBIShardResult",
    "LBIShardTask",
    "ShardSweepResult",
    "ShardedLoadBalancer",
    "TrialExecutor",
    "TrialTask",
    "VSAShardTask",
    "WorkerPool",
    "fold_lbi_paths",
    "lbi_shard_worker",
    "path_of",
    "run_trial_worker",
    "shard_depth",
    "shard_index",
    "spawn_trial_seeds",
    "sweep_paths",
    "vsa_shard_worker",
]
