"""The shard-parallel balancer: fan subtree work out, merge like a KT parent.

:class:`ShardedLoadBalancer` subclasses the serial
:class:`~repro.core.balancer.LoadBalancer` and overrides exactly the
two hooks the core exposes — ``_aggregate_lbi`` (phase 1's bottom-up
fold) and ``_run_vsa_sweep`` (phase 3b's rendezvous sweep).  Every
other step of the round (report collection, classification, entry
publication, delivery with faults/retries, transfers) runs on the
parent process unchanged, consuming its rng and fault streams in
exactly the serial order; only the *pure* subtree computations cross
the process boundary.

Determinism contract (asserted by ``tests/test_parallel_determinism``):
for any seed, fault plan and shard count ``S = K**d``, the produced
:class:`~repro.core.report.BalanceReport` is byte-identical to the
serial balancer's — same floats, same assignment order, same message
counts.  The merge rules that make this hold are documented in
:mod:`repro.parallel.shardwork` and ``docs/parallelism.md``.

When the lazily-materialised tree is too shallow for the configured
depth (a reporting or bucketed leaf sits *above* level ``d``), shards
would not tile the report set; the engine then falls back to the
serial path for that phase — counted in ``parallel.fallbacks`` —
rather than produce a different answer.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.adversary.engine import AdversaryEngine
from repro.adversary.plan import AdversaryPlan
from repro.core.balancer import LoadBalancer
from repro.core.config import BalancerConfig
from repro.core.lbi import AggregationTrace
from repro.core.placement import PlacementStrategy
from repro.core.records import LBIRecord, ShedCandidate, SpareCapacity, SystemLBI
from repro.core.vsa import VSAResult
from repro.dht.chord import ChordRing
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.faults.stats import FaultRoundStats
from repro.ktree.node import KTNode
from repro.ktree.tree import KnaryTree
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseClock
from repro.obs.trace import Tracer
from repro.topology.graph import Topology
from repro.topology.routing import DistanceOracle
from repro.parallel.pool import WorkerPool
from repro.parallel.shards import Path, descending_paths, path_of, shard_depth
from repro.parallel.shardwork import (
    LBIShardTask,
    VSAShardTask,
    fold_lbi_paths,
    lbi_shard_worker,
    sweep_paths,
    vsa_shard_worker,
)


class ShardedLoadBalancer(LoadBalancer):
    """A :class:`~repro.core.balancer.LoadBalancer` with sharded phases.

    Accepts every serial-balancer parameter plus:

    Parameters
    ----------
    num_shards:
        Shard count ``S``; must be a power of the configured tree
        degree (``S = K**d`` subtrees at depth ``d`` tile the
        identifier space).  ``1`` exercises the full dispatch/merge
        machinery over a single shard — useful as the cheapest
        byte-identity check.
    pool:
        Optional shared :class:`~repro.parallel.pool.WorkerPool`; when
        omitted the engine owns a ``"process"``-mode pool sized to the
        shard count.  Pass an ``"inline"``-mode pool to run the whole
        sharded code path synchronously (tests do).

    Use as a context manager (or call :meth:`close`) to release an
    owned pool's worker processes.
    """

    def __init__(
        self,
        ring: ChordRing,
        config: BalancerConfig | None = None,
        topology: Topology | None = None,
        oracle: DistanceOracle | None = None,
        landmarks: np.ndarray | None = None,
        placement: PlacementStrategy | None = None,
        rng: int | None | np.random.Generator = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        adversary: AdversaryPlan | AdversaryEngine | None = None,
        num_shards: int = 1,
        pool: WorkerPool | None = None,
    ) -> None:
        """Validate the shard count, then defer to the serial balancer."""
        super().__init__(
            ring,
            config,
            topology=topology,
            oracle=oracle,
            landmarks=landmarks,
            placement=placement,
            rng=rng,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
            retry=retry,
            adversary=adversary,
        )
        self.num_shards = num_shards
        self._shard_depth = shard_depth(num_shards, self.config.tree_degree)
        self._owns_pool = pool is None
        self.pool = (
            pool if pool is not None else WorkerPool(num_shards, mode="process")
        )

    # ------------------------------------------------------------------
    # Phase 1: sharded LBI aggregation
    # ------------------------------------------------------------------
    def _aggregate_lbi(
        self,
        tree: KnaryTree,
        reports: dict[int, tuple[KTNode, list[LBIRecord]]],
    ) -> tuple[SystemLBI, AggregationTrace]:
        """Fold each shard's reports in a worker, merge at the super-root.

        The per-shard folds reproduce the serial bottom-up fold inside
        their subtrees (see :func:`repro.parallel.shardwork.fold_lbi_paths`);
        the shard values are then folded once more over the ancestor
        trie — children ascending, exactly as a KT parent merges its
        children — which is itself just ``fold_lbi_paths`` rooted at
        the tree root with one "report" per shard.  Falls back to the
        serial implementation when a reporting leaf sits above shard
        depth (shards would not tile the report set) or when there are
        no reports at all (the serial error path owns that case).
        """
        depth = self._shard_depth
        if not reports:
            return super()._aggregate_lbi(tree, reports)

        leaf_paths: list[tuple[Path, list[LBIRecord]]] = []
        for leaf, records in reports.values():
            if leaf.level < depth:
                self._count_fallback("lbi")
                return super()._aggregate_lbi(tree, reports)
            leaf_paths.append((path_of(leaf), records))

        by_shard: dict[Path, list[tuple[Path, tuple[LBIRecord, ...]]]] = {}
        for path, records in leaf_paths:
            by_shard.setdefault(path[:depth], []).append((path, tuple(records)))
        tasks = [
            LBIShardTask(shard_path=prefix, reports=tuple(by_shard[prefix]))
            for prefix in sorted(by_shard)
        ]

        clock = PhaseClock()
        with clock.phase("dispatch"):
            results = self.pool.map_ordered(lbi_shard_worker, tasks)

        # Super-root merge: fold the shard aggregates over the ancestor
        # trie — <sum L, sum C, min L_min> at every step, children
        # ascending, one upward message per trie edge.
        top_reports = tuple(
            (result.shard_path, (result.value,)) for result in results
        )
        root_value, top_messages, top_at_level, _ = fold_lbi_paths(
            top_reports, ()
        )
        assert root_value is not None
        system = SystemLBI.from_record(root_value)

        trace = AggregationTrace()
        nodes = tree.nodes_by_level_desc()
        trace.tree_height = nodes[0].level if nodes else 0
        trace.reports = sum(result.reports for result in results)
        trace.upward_messages = (
            sum(result.upward_messages for result in results) + top_messages
        )
        trace.upward_rounds = trace.tree_height
        trace.downward_rounds = trace.tree_height
        trace.downward_messages = trace.upward_messages

        self._record_parallel("lbi", len(tasks), clock.seconds["dispatch"])
        tracer = self.tracer
        if tracer.enabled:
            messages_at_level: Counter[int] = Counter(top_at_level)
            for result in results:
                for level, count in result.messages_at_level:
                    messages_at_level[level] += count
            for level in sorted(messages_at_level, reverse=True):
                tracer.event(
                    "lbi.level", level=level, messages_up=messages_at_level[level]
                )
            tracer.event(
                "lbi.aggregate",
                reports=trace.reports,
                messages_up=trace.upward_messages,
                messages_down=trace.downward_messages,
                rounds=trace.total_rounds,
                tree_height=trace.tree_height,
                total_load=system.total_load,
                total_capacity=system.total_capacity,
                min_vs_load=system.min_vs_load,
            )
        return system, trace

    # ------------------------------------------------------------------
    # Phase 3b: sharded VSA sweep
    # ------------------------------------------------------------------
    def _run_vsa_sweep(
        self,
        tree: KnaryTree,
        published: list[tuple[int, ShedCandidate | SpareCapacity]],
        min_vs_load: float,
        stats: FaultRoundStats,
    ) -> VSAResult:
        """Deliver on the parent, sweep per shard, merge level by level.

        Delivery (which consumes the retry rng and fault streams) runs
        here in publication order exactly as serially; the per-shard
        sweeps then run in workers and the parent finishes the top
        levels (``d-1 .. 0``) over the shard leftovers — the same
        ``sweep_paths`` routine rooted at the tree root.  Merge order
        rules (level-descending, shards path-descending within a level,
        leftovers extending parent buckets in descending child order)
        recreate the serial assignment and message accounting exactly.

        One documented trace divergence: per-node ``vsa.rendezvous``
        events from inside worker subtrees are not emitted in sharded
        mode (they would have to be re-interleaved across processes);
        ``vsa.publish`` and the ``vsa.sweep`` summary are identical.
        """
        depth = self._shard_depth
        sweep = self._build_vsa_sweep(tree, min_vs_load, stats)
        result = VSAResult(entries_published=len(published))
        pending = sweep.deliver(published, result)

        nodes = tree.nodes_by_level_desc()
        result.rounds = nodes[0].level if nodes else 0

        bucketed: list[KTNode] = [node for node in nodes if id(node) in pending]
        if any(node.level < depth for node in bucketed):
            self._count_fallback("vsa")
            sweep.sweep(pending, result)
            self._emit_vsa_summary(result)
            return result

        by_shard: dict[
            Path,
            list[tuple[Path, tuple[ShedCandidate, ...], tuple[SpareCapacity, ...]]],
        ] = {}
        for node in bucketed:
            path = path_of(node)
            heavy, light = pending[id(node)]
            by_shard.setdefault(path[:depth], []).append(
                (path, tuple(heavy), tuple(light))
            )
        tasks = [
            VSAShardTask(
                shard_path=prefix,
                buckets=tuple(by_shard[prefix]),
                threshold=sweep.threshold,
                min_vs_load=sweep.min_vs_load,
                strict_heaviest_first=sweep.strict_heaviest_first,
                root_is_global=depth == 0,
            )
            for prefix in sorted(by_shard)
        ]

        clock = PhaseClock()
        with clock.phase("dispatch"):
            shard_results = self.pool.map_ordered(vsa_shard_worker, tasks)
        by_prefix = {
            task.shard_path: shard_result
            for task, shard_result in zip(tasks, shard_results)
        }
        shards_descending = descending_paths([task.shard_path for task in tasks])

        # Assignments from inside the shards: serial order is level by
        # level (deepest first), shards in descending path order within
        # each level, each shard's run already internally ordered.
        levels = sorted(
            {
                level
                for shard_result in shard_results
                for level, _ in shard_result.assignments_by_level
            },
            reverse=True,
        )
        runs_by_shard = {
            prefix: dict(by_prefix[prefix].assignments_by_level)
            for prefix in shards_descending
        }
        for level in levels:
            for prefix in shards_descending:
                result.assignments.extend(runs_by_shard[prefix].get(level, ()))
        for shard_result in shard_results:
            for level, count in shard_result.pairings_by_level:
                result.pairings_by_level[level] += count
            result.upward_messages += shard_result.upward_messages

        if depth == 0:
            # Single shard rooted at the tree root: its leftovers are the
            # round's unassigned entries and there is no top sweep.
            if shard_results:
                only = shard_results[0]
                result.unassigned_heavy.extend(only.leftover_heavy)
                result.unassigned_light.extend(only.leftover_light)
        else:
            # Top sweep over levels d-1 .. 0: shard leftovers extend the
            # shard parents' buckets in descending shard order (exactly
            # the order the serial sweep's parent buckets fill), then the
            # same path-sweep routine finishes at the unconditional root.
            top_buckets: dict[
                Path, tuple[list[ShedCandidate], list[SpareCapacity]]
            ] = {}
            for prefix in shards_descending:
                shard_result = by_prefix[prefix]
                if shard_result.leftover_heavy or shard_result.leftover_light:
                    bucket = top_buckets.setdefault(prefix[:-1], ([], []))
                    bucket[0].extend(shard_result.leftover_heavy)
                    bucket[1].extend(shard_result.leftover_light)
            top = sweep_paths(
                tuple(
                    (path, tuple(heavy), tuple(light))
                    for path, (heavy, light) in top_buckets.items()
                ),
                (),
                threshold=sweep.threshold,
                min_vs_load=sweep.min_vs_load,
                strict_heaviest_first=sweep.strict_heaviest_first,
                root_is_global=True,
            )
            for level, run in top.assignments_by_level:
                result.assignments.extend(run)
            for level, count in top.pairings_by_level:
                result.pairings_by_level[level] += count
            result.upward_messages += top.upward_messages
            result.unassigned_heavy.extend(top.leftover_heavy)
            result.unassigned_light.extend(top.leftover_light)

        self._record_parallel("vsa", len(tasks), clock.seconds["dispatch"])
        self._emit_vsa_summary(result)
        return result

    def _emit_vsa_summary(self, result: VSAResult) -> None:
        """Emit the ``vsa.sweep`` summary the serial entry point emits."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "vsa.sweep",
                entries_published=result.entries_published,
                entries_lost=result.entries_lost,
                pairings=len(result.assignments),
                messages_up=result.upward_messages,
                rounds=result.rounds,
                unassigned_heavy=len(result.unassigned_heavy),
                unassigned_light=len(result.unassigned_light),
            )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record_parallel(self, phase: str, tasks: int, seconds: float) -> None:
        """Record one sharded dispatch in the ``parallel.*`` instruments."""
        metrics = self.metrics
        if metrics is None:
            return
        metrics.gauge("parallel.shards").set(self.num_shards)
        metrics.counter(f"parallel.{phase}_tasks").inc(tasks)
        metrics.histogram(f"parallel.{phase}.dispatch_seconds").observe(seconds)

    def _count_fallback(self, phase: str) -> None:
        """Record one serial fallback (misaligned shallow leaf)."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("parallel.fallbacks").inc()
        tracer = self.tracer
        if tracer.enabled:
            tracer.event("parallel.fallback", phase=phase, reason="shallow-leaf")

    def close(self) -> None:
        """Release the owned worker pool (no-op for a shared pool)."""
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "ShardedLoadBalancer":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release the owned pool."""
        self.close()
