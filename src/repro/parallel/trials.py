"""The parallel trial engine: fan experiment seed sweeps across workers.

An experiment *trial* is a pure function of an integer seed (one
variance replication, one chaos drop-rate cell, one figure bench
repeat).  :class:`TrialExecutor` runs a batch of trials through a
:class:`~repro.parallel.pool.WorkerPool`, each under a fresh
:class:`~repro.obs.metrics.MetricsRegistry`, then merges the per-trial
registries back into the caller's active registry **in trial order** —
so a parallel sweep's merged metrics match a serial sweep's for every
instrument except the ``parallel.*`` bookkeeping the engine itself
adds (and float-valued counters, which are equal up to summation
order; see :meth:`~repro.obs.metrics.MetricsRegistry.merge`).

Trial results themselves are byte-identical to serial execution: the
trial function receives exactly the same seed it would have received
in the serial loop, and nothing about process placement leaks in.
Workers run untraced (events cannot be interleaved back into the
parent's trace stream in a meaningful order), which is the one
documented observability difference from serial runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_metrics, set_metrics, set_tracer
from repro.obs.trace import NULL_TRACER
from repro.parallel.pool import WorkerPool


@dataclass(frozen=True, slots=True)
class TrialTask:
    """One trial: a picklable callable plus the seed to run it under.

    ``fn`` must be a module-level function or :func:`functools.partial`
    over one (anything the :mod:`pickle` module can ship to a worker).
    """

    fn: Callable[[int], Any]
    seed: int


def run_trial_worker(task: TrialTask) -> tuple[Any, MetricsRegistry]:
    """Worker entry point: run one trial under fresh observability.

    Installs a new :class:`~repro.obs.metrics.MetricsRegistry` and the
    null tracer for the duration of the trial (a forked worker inherits
    the parent's instruments; recording into them from another process
    would corrupt both), restores the previous instruments afterwards,
    and returns ``(trial result, registry)`` for the parent to merge.
    """
    registry = MetricsRegistry()
    previous_tracer = set_tracer(NULL_TRACER)
    previous_metrics = set_metrics(registry)
    try:
        value = task.fn(task.seed)
    finally:
        set_metrics(previous_metrics)
        set_tracer(previous_tracer)
    return value, registry


def spawn_trial_seeds(root_seed: int, count: int) -> tuple[int, ...]:
    """Derive ``count`` independent trial seeds from ``root_seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, so sibling seeds
    index statistically independent streams no matter how close the
    root seeds are — the sanctioned way to grow a seed sweep for a new
    experiment (existing sweeps keep their historical arithmetic seed
    schedules for backwards comparability).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return tuple(int(child.generate_state(1, dtype=np.uint32)[0]) for child in children)


class TrialExecutor:
    """Runs per-seed trials through a worker pool and merges metrics.

    Parameters
    ----------
    workers:
        Worker process count when no explicit ``pool`` is given.
    mode:
        Pool mode (``"process"`` / ``"inline"``) when no explicit
        ``pool`` is given; inline mode runs trials synchronously and is
        what tests use to assert parallel/serial equivalence cheaply.
    pool:
        A pre-built :class:`~repro.parallel.pool.WorkerPool` to share
        across sweeps; the executor then does not own (or close) it.

    Use as a context manager to release owned worker processes.
    """

    def __init__(
        self,
        workers: int = 1,
        mode: str = "process",
        pool: WorkerPool | None = None,
    ) -> None:
        """Create the executor, building an owned pool unless given one."""
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else WorkerPool(workers, mode=mode)

    def map(
        self,
        fn: Callable[[int], Any],
        seeds: Iterable[int],
    ) -> list[Any]:
        """Run ``fn(seed)`` for every seed; results in seed order.

        Each trial executes under a fresh registry via
        :func:`run_trial_worker`; afterwards the per-trial registries
        are merged into the caller's active registry (if one is
        installed) in seed order, plus ``parallel.trials`` /
        ``parallel.workers`` bookkeeping.
        """
        tasks = [TrialTask(fn=fn, seed=int(seed)) for seed in seeds]
        pairs = self.pool.map_ordered(run_trial_worker, tasks)
        registry = current_metrics()
        if registry is not None and pairs:
            for _, trial_registry in pairs:
                registry.merge(trial_registry)
            registry.counter("parallel.trials").inc(len(pairs))
            registry.gauge("parallel.workers").set(self.pool.workers)
        return [value for value, _ in pairs]

    def close(self) -> None:
        """Release the owned pool (no-op for a shared pool)."""
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "TrialExecutor":
        """Context-manager entry: the executor itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: release the owned pool."""
        self.close()
