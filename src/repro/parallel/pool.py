"""Worker-pool lifecycle: the one place allowed to spawn processes.

The ``no-fork-in-protocol`` lint rule confines process creation to this
module so every fan-out in the codebase shares one executor policy:
ordered dispatch, lazy pool creation, and graceful degradation to
inline execution when a pool cannot be created or dies mid-flight
(shard and trial tasks are pure, so rerunning them inline is always
safe).

Two modes exist.  ``"process"`` backs :meth:`WorkerPool.map_ordered`
with a :class:`concurrent.futures.ProcessPoolExecutor`; ``"inline"``
runs tasks synchronously on the caller — semantically identical,
useful for tests and for ``workers=1`` where process overhead buys
nothing.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, TypeVar

from repro.exceptions import ConfigError

_TaskT = TypeVar("_TaskT")
_ResultT = TypeVar("_ResultT")

#: Execution modes accepted by :class:`WorkerPool`.
POOL_MODES = ("process", "inline")


class WorkerPool:
    """A reusable, lazily-created pool of worker processes.

    Parameters
    ----------
    workers:
        Maximum concurrent worker processes.  ``1`` never creates a
        pool — dispatch runs inline regardless of ``mode``.
    mode:
        ``"process"`` (real processes) or ``"inline"`` (synchronous
        execution in the calling process).

    The pool is created on first use and kept for the object's
    lifetime, so repeated rounds amortise worker startup.  Use as a
    context manager (or call :meth:`close`) to release the processes.
    """

    def __init__(self, workers: int = 1, mode: str = "process") -> None:
        """Validate and store the pool policy; nothing is spawned yet."""
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if mode not in POOL_MODES:
            raise ConfigError(f"mode must be one of {POOL_MODES}, got {mode!r}")
        self.workers = workers
        self.mode = mode
        self._executor: ProcessPoolExecutor | None = None
        self._broken = False

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        """The live executor, or ``None`` when dispatch must be inline."""
        if self.mode == "inline" or self.workers <= 1 or self._broken:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, ValueError):  # pragma: no cover - env-specific
                self._broken = True
                return None
        return self._executor

    def map_ordered(
        self,
        fn: Callable[[_TaskT], _ResultT],
        tasks: Iterable[_TaskT],
    ) -> list[_ResultT]:
        """Apply ``fn`` to every task, returning results in task order.

        Tasks run concurrently in ``"process"`` mode but the result
        list always matches the input order — deterministic merge code
        never sees completion order.  ``fn`` and every task must be
        picklable (module-level callables, frozen dataclasses).  A pool
        that breaks mid-dispatch (a worker killed by the OS) downgrades
        the pool to inline and reruns the batch synchronously; tasks
        are required to be pure, so the rerun cannot double-apply
        anything.  Exceptions raised by ``fn`` itself propagate
        unchanged in both modes.
        """
        task_list = list(tasks)
        if not task_list:
            return []
        executor = self._ensure_executor()
        if executor is None or len(task_list) == 1:
            return [fn(task) for task in task_list]
        try:
            return list(executor.map(fn, task_list))
        except BrokenProcessPool:  # pragma: no cover - env-specific
            self._broken = True
            self._shutdown()
            return [fn(task) for task in task_list]

    # ------------------------------------------------------------------
    def _shutdown(self) -> None:
        """Tear down the executor if one was ever created."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Release worker processes; the pool may be reused afterwards."""
        self._shutdown()

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: release worker processes."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "broken" if self._broken else (
            "live" if self._executor is not None else "idle"
        )
        return f"WorkerPool(workers={self.workers}, mode={self.mode!r}, {state})"
