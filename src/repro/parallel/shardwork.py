"""Pure, picklable shard work units: the LBI fold and the VSA sweep.

Worker processes never see the ring, the tree, the rng streams or the
fault injector — those all live (and are consumed) on the parent.  A
worker receives a task holding absolute tree *paths* (tuples of child
indices, see :mod:`repro.parallel.shards`) plus the per-path payloads,
and recomputes exactly what the serial sweep would have computed inside
that subtree:

* :func:`fold_lbi_paths` reproduces ``aggregate_lbi``'s bottom-up
  ``<L, C, L_min>`` fold.  The serial fold is *structural* — the value
  at a node is the merge of its own reports (in arrival order) followed
  by its children's values in ascending child order — so folding each
  shard's trie and then folding the shard values at the super-root
  yields bit-identical floats and message counts.
* :func:`sweep_paths` reproduces the VSA rendezvous sweep.  The serial
  sweep visits materialised nodes deepest level first and, within a
  level, in *descending path order* (the preorder stack pushes children
  ascending and pops them back descending; the stable level sort keeps
  that order).  Each node's pairing outcome depends only on its
  subtree, but the global assignment list interleaves shards level by
  level — so workers return *per-level* assignment runs and the parent
  concatenates them level-descending, shards in descending path order,
  exactly recreating the serial encounter order.

Both functions raise nothing on empty input and perform no I/O, which
is what makes rerunning them inline after a broken pool safe.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.records import Assignment, LBIRecord, ShedCandidate, SpareCapacity
from repro.core.rendezvous import pair_rendezvous
from repro.parallel.shards import Path


def _descending_sweep_order(paths: dict[Path, None]) -> list[Path]:
    """Trie paths in serial sweep order: level-desc, then path-desc."""
    return sorted(paths, key=lambda p: (-len(p), tuple(-part for part in p)))


# ----------------------------------------------------------------------
# LBI: bottom-up <L, C, L_min> fold over a path trie
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class LBIShardTask:
    """One shard's LBI fold input (picklable, parent-built).

    ``reports`` pairs each reporting leaf's absolute path with its
    report tuple in arrival order; every path must extend
    ``shard_path`` (the parent enforces alignment before dispatch).
    """

    shard_path: Path
    reports: tuple[tuple[Path, tuple[LBIRecord, ...]], ...]


@dataclass(frozen=True, slots=True)
class LBIShardResult:
    """One shard's LBI fold output.

    ``value`` is the subtree aggregate (what the serial fold would hold
    at the shard root); ``messages_at_level`` counts child-to-parent
    messages keyed by the *receiving* node's absolute level, matching
    ``aggregate_lbi``'s per-level trace events.
    """

    shard_path: Path
    value: LBIRecord
    upward_messages: int
    messages_at_level: tuple[tuple[int, int], ...]
    reports: int


def fold_lbi_paths(
    reports: tuple[tuple[Path, tuple[LBIRecord, ...]], ...],
    root_path: Path,
) -> tuple[LBIRecord | None, int, Counter[int], int]:
    """Fold ``reports`` bottom-up over the trie they span.

    Returns ``(value_at_root_path, upward_messages, messages_at_level,
    report_count)``.  The trie contains every prefix of a reporting
    path down to ``root_path``; each trie edge carries exactly one
    upward message (every trie node spans at least one report, so it
    always has a value to send), which is also how the serial fold
    counts messages — materialised nodes outside the trie hold no value
    and send nothing.  Merge order at each node is arrival-order own
    reports first, then child values ascending, reproducing the serial
    float results exactly.  ``value`` is ``None`` only for an empty
    report set.
    """
    records_at: dict[Path, list[LBIRecord]] = {}
    for path, records in reports:
        records_at.setdefault(path, []).extend(records)

    trie: dict[Path, None] = {}
    kids: dict[Path, dict[int, None]] = {}
    for path in records_at:
        for cut in range(len(root_path), len(path) + 1):
            prefix = path[:cut]
            trie[prefix] = None
            if cut > len(root_path):
                kids.setdefault(path[: cut - 1], {})[path[cut - 1]] = None

    upward = 0
    at_level: Counter[int] = Counter()
    report_count = 0
    partial: dict[Path, LBIRecord] = {}
    for path in _descending_sweep_order(trie):
        acc: LBIRecord | None = None
        for record in records_at.get(path, ()):
            acc = record if acc is None else acc.merge(record)
            report_count += 1
        for child_index in sorted(kids.get(path, ())):
            child_value = partial.pop(path + (child_index,))
            acc = child_value if acc is None else acc.merge(child_value)
            upward += 1
            at_level[len(path)] += 1
        assert acc is not None  # every trie node spans >= 1 report
        partial[path] = acc
    return partial.get(root_path), upward, at_level, report_count


def lbi_shard_worker(task: LBIShardTask) -> LBIShardResult:
    """Worker entry point: fold one shard's LBI reports.

    Pure function of ``task``; raises
    :class:`~repro.exceptions.ReproError` never and consumes no
    randomness, so dispatch order and process placement cannot affect
    the result.
    """
    value, upward, at_level, report_count = fold_lbi_paths(
        task.reports, task.shard_path
    )
    assert value is not None  # parent never dispatches an empty shard
    return LBIShardResult(
        shard_path=task.shard_path,
        value=value,
        upward_messages=upward,
        messages_at_level=tuple(sorted(at_level.items())),
        reports=report_count,
    )


# ----------------------------------------------------------------------
# VSA: bottom-up rendezvous sweep over a path trie
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class VSAShardTask:
    """One shard's VSA sweep input (picklable, parent-built).

    ``buckets`` pairs each delivered leaf's absolute path with its
    (heavy, light) entry tuples in delivery order — the parent runs the
    fault/rng-consuming delivery itself and ships only the outcome.
    ``root_is_global`` marks the degenerate single-shard case where the
    shard root is the tree root and must pair unconditionally.
    """

    shard_path: Path
    buckets: tuple[tuple[Path, tuple[ShedCandidate, ...], tuple[SpareCapacity, ...]], ...]
    threshold: int
    min_vs_load: float
    strict_heaviest_first: bool
    root_is_global: bool


@dataclass(frozen=True, slots=True)
class ShardSweepResult:
    """One subtree sweep's output, shaped for deterministic merging.

    ``assignments_by_level`` holds ``(level, assignments)`` runs sorted
    deepest level first, each run in the subtree's internal descending-
    path order; the parent interleaves runs from all shards level by
    level to recreate the serial assignment order.  ``leftover_*`` are
    the entries still unpaired at the subtree root (for the global root
    these are the round's unassigned entries); ``upward_messages``
    includes the subtree root's own message to its parent when it
    forwards leftovers (the parent-side top sweep starts counting at
    the next level up).
    """

    assignments_by_level: tuple[tuple[int, tuple[Assignment, ...]], ...]
    pairings_by_level: tuple[tuple[int, int], ...]
    upward_messages: int
    leftover_heavy: tuple[ShedCandidate, ...]
    leftover_light: tuple[SpareCapacity, ...]


def sweep_paths(
    buckets: tuple[
        tuple[Path, tuple[ShedCandidate, ...], tuple[SpareCapacity, ...]], ...
    ],
    root_path: Path,
    threshold: int,
    min_vs_load: float,
    strict_heaviest_first: bool,
    root_is_global: bool,
) -> ShardSweepResult:
    """Run the bottom-up rendezvous sweep over ``buckets``'s trie.

    Semantics mirror :meth:`repro.core.vsa.VSASweep.sweep` restricted
    to the subtree under ``root_path``: visit trie nodes deepest level
    first (descending path within a level), pair at a node when it is
    the unconditional global root or its combined bucket reaches
    ``threshold``, and forward leftovers to the parent bucket — which
    therefore accumulates children's leftovers in descending child
    order, exactly as the serial sweep's parent buckets do.  A
    forwarded non-empty leftover costs one upward message, including
    the final hop out of a non-global subtree root.
    """
    pending: dict[Path, tuple[list[ShedCandidate], list[SpareCapacity]]] = {}
    for path, heavy, light in buckets:
        bucket = pending.setdefault(path, ([], []))
        bucket[0].extend(heavy)
        bucket[1].extend(light)

    trie: dict[Path, None] = {}
    for path in pending:
        for cut in range(len(root_path), len(path) + 1):
            trie[path[:cut]] = None

    assignments_by_level: dict[int, list[Assignment]] = {}
    pairings: Counter[int] = Counter()
    upward = 0
    leftover_heavy: list[ShedCandidate] = []
    leftover_light: list[SpareCapacity] = []
    for path in _descending_sweep_order(trie):
        buck = pending.pop(path, None)
        if buck is None:
            continue
        heavy, light = buck
        level = len(path)
        at_subtree_root = level == len(root_path)
        is_root = root_is_global and at_subtree_root
        if is_root or (len(heavy) + len(light)) >= threshold:
            outcome = pair_rendezvous(
                heavy,
                light,
                min_vs_load=min_vs_load,
                level=level,
                strict_heaviest_first=strict_heaviest_first,
            )
            assignments_by_level.setdefault(level, []).extend(
                outcome.assignments
            )
            pairings[level] += len(outcome.assignments)
            up_heavy, up_light = outcome.leftover_heavy, outcome.leftover_light
        else:
            up_heavy, up_light = heavy, light

        if at_subtree_root:
            leftover_heavy.extend(up_heavy)
            leftover_light.extend(up_light)
            if not is_root and (up_heavy or up_light):
                upward += 1
        elif up_heavy or up_light:
            parent_bucket = pending.setdefault(path[:-1], ([], []))
            parent_bucket[0].extend(up_heavy)
            parent_bucket[1].extend(up_light)
            upward += 1

    return ShardSweepResult(
        assignments_by_level=tuple(
            (level, tuple(assignments_by_level[level]))
            for level in sorted(assignments_by_level, reverse=True)
        ),
        pairings_by_level=tuple(sorted(pairings.items())),
        upward_messages=upward,
        leftover_heavy=tuple(leftover_heavy),
        leftover_light=tuple(leftover_light),
    )


def vsa_shard_worker(task: VSAShardTask) -> ShardSweepResult:
    """Worker entry point: sweep one shard's delivered VSA buckets.

    Pure function of ``task`` — the rendezvous pairing itself is
    deterministic and all fault/rng machinery already ran parent-side
    during delivery.
    """
    return sweep_paths(
        task.buckets,
        task.shard_path,
        threshold=task.threshold,
        min_vs_load=task.min_vs_load,
        strict_heaviest_first=task.strict_heaviest_first,
        root_is_global=task.root_is_global,
    )
