"""Observability: structured tracing + metrics for the four-phase balancer.

The paper's efficiency argument is a *cost* argument — messages up and
down the K-nary tree, rendezvous pairings, virtual-server moves and the
network distance they cover.  This package makes those costs visible
while a round runs, instead of only in end-of-round aggregates:

* :class:`MetricsRegistry` — named counters, gauges and histograms with
  quantile summaries; one registry per system (or per experiment).
* :class:`Tracer` — typed span/event records (phase, node index, KT
  level, message kind, load moved) written to a pluggable
  :class:`Sink`: in-memory for tests, JSONL for offline analysis,
  console for humans.
* :class:`RoundProfile` — the per-phase breakdown every
  :class:`~repro.core.report.BalanceReport` now carries.

Instrumentation is zero-overhead by default: the module-level
:data:`NULL_TRACER` is disabled, every hot-path call site guards on
``tracer.enabled``, and metrics recording is skipped entirely when no
registry is attached.  Enable it per balancer/system (``tracer=...``,
``metrics=...``) or process-wide via :func:`observe` /
:func:`set_tracer`, which is how the CLI ``--trace``/``--metrics-out``
flags work.  See ``docs/observability.md`` for the operator's guide.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import PhaseClock, PhaseProfile, RoundProfile, profile_from_report
from repro.obs.runtime import current_metrics, current_tracer, observe, set_metrics, set_tracer
from repro.obs.sinks import ConsoleSink, InMemorySink, JSONLSink, NullSink, Sink
from repro.obs.trace import NULL_TRACER, Span, TraceRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseClock",
    "PhaseProfile",
    "RoundProfile",
    "profile_from_report",
    "Sink",
    "NullSink",
    "InMemorySink",
    "JSONLSink",
    "ConsoleSink",
    "Tracer",
    "Span",
    "TraceRecord",
    "NULL_TRACER",
    "observe",
    "current_tracer",
    "current_metrics",
    "set_tracer",
    "set_metrics",
]
