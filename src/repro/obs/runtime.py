"""Process-wide observability defaults (the CLI's entry point).

Experiments construct their balancers internally, so the CLI cannot
thread a tracer through every call signature.  Instead this module
holds one process-wide default tracer and metrics registry;
:class:`~repro.core.balancer.LoadBalancer` and
:class:`~repro.app.system.P2PSystem` fall back to these whenever no
explicit ``tracer=``/``metrics=`` was passed.

The defaults start as :data:`~repro.obs.trace.NULL_TRACER` and ``None``,
preserving the zero-overhead contract.  Enable observability for a
scoped block with::

    with observe(tracer=Tracer.to_file("round.jsonl")) as (tracer, _):
        balancer.run_round()      # any balancer built inside observes

or permanently with :func:`set_tracer` / :func:`set_metrics`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

_tracer: Tracer = NULL_TRACER
_metrics: MetricsRegistry | None = None


def current_tracer() -> Tracer:
    """The process-wide default tracer (disabled unless configured)."""
    return _tracer


def current_metrics() -> MetricsRegistry | None:
    """The process-wide default metrics registry (``None`` unless set)."""
    return _metrics


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the process default; ``None`` resets.

    Returns the previously installed tracer so callers can restore it.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def set_metrics(metrics: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``metrics`` as the process default; ``None`` resets.

    Returns the previously installed registry.
    """
    global _metrics
    previous = _metrics
    _metrics = metrics
    return previous


@contextmanager
def observe(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Scoped observability: install defaults, restore them on exit.

    Omitted arguments get fresh defaults (an in-memory tracer / a new
    registry) so ``with observe() as (tracer, metrics):`` always yields
    usable instruments.  The tracer is *not* closed on exit — the caller
    may still want to read an in-memory sink or keep a file open.
    """
    active_tracer = tracer if tracer is not None else Tracer.in_memory()
    active_metrics = metrics if metrics is not None else MetricsRegistry()
    prev_tracer = set_tracer(active_tracer)
    prev_metrics = set_metrics(active_metrics)
    try:
        yield active_tracer, active_metrics
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
