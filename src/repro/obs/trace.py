"""Structured tracing: typed span/event records over a pluggable sink.

A :class:`Tracer` produces a flat stream of :class:`TraceRecord`
objects.  Three kinds exist:

* ``span_start`` / ``span_end`` — a named, nested duration (one per
  balancing phase, one ``round`` span around them all).  ``span_end``
  carries ``seconds`` in its fields.
* ``event`` — a point record inside the current span (one virtual-server
  transfer, one rendezvous pairing, one aggregation level, ...).

Records carry a monotonically increasing ``seq`` so a sink's output can
be totally ordered even when timestamps tie, plus the span id and parent
span id so consumers can rebuild the span tree.  All domain payload
(node index, KT level, load, distance, message kind) travels in the
``fields`` dict — the schema per event name is documented in
``docs/observability.md``.

Zero-overhead contract: the module-level :data:`NULL_TRACER` is
permanently disabled; its :meth:`Tracer.span` returns a shared inert
span and :meth:`Tracer.event` returns immediately.  Hot paths guard
bulk work (per-message loops, dict building) behind ``tracer.enabled``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.obs.sinks import InMemorySink, JSONLSink, NullSink, Sink


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One element of the trace stream (see module docstring for kinds)."""

    kind: str  # "span_start" | "span_end" | "event"
    name: str  # span name or event name, e.g. "vst.transfer"
    span_id: int  # id of the enclosing (or started/ended) span
    parent_id: int | None  # id of the parent span; None at the root
    seq: int  # total order over the stream
    t: float  # seconds since the tracer was created
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict (what the JSONL sink writes per line).

        Non-finite floats (a NaN transfer distance without a topology,
        an infinite ``min_vs_load``) become ``null`` so every line is
        strict JSON — ``jq`` and pandas parse the file unmodified.
        """
        return {
            "kind": self.kind,
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "seq": self.seq,
            "t": round(self.t, 9),
            "fields": {
                k: (None if isinstance(v, float) and not math.isfinite(v) else v)
                for k, v in self.fields.items()
            },
        }


class Span:
    """A live span; use as a context manager or call :meth:`end` directly."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "_t0", "_ended")

    def __init__(
        self, tracer: "Tracer", name: str, span_id: int, parent_id: int | None
    ) -> None:
        """Open the span (constructed by :meth:`Tracer.span`, not directly)."""
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self._t0 = time.perf_counter()
        self._ended = False

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point event attributed to this span."""
        self.tracer._emit("event", name, self.span_id, self.parent_id, fields)

    def end(self, **fields: Any) -> None:
        """Close the span; idempotent.  ``seconds`` is added to fields."""
        if self._ended:
            return
        self._ended = True
        fields["seconds"] = time.perf_counter() - self._t0
        tracer = self.tracer
        tracer._emit("span_end", self.name, self.span_id, self.parent_id, fields)
        tracer._stack.pop()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        self.end()


class _NullSpan:
    """The inert span handed out by a disabled tracer."""

    __slots__ = ()

    def event(self, name: str, **fields: Any) -> None:
        """No-op."""

    def end(self, **fields: Any) -> None:
        """No-op."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Emits :class:`TraceRecord` objects to a :class:`Sink`.

    Parameters
    ----------
    sink:
        Destination for records.  ``None`` (or a :class:`NullSink`)
        produces a *disabled* tracer: ``enabled`` is False and every
        call is a near-free no-op.

    Examples
    --------
    >>> from repro.obs import InMemorySink, Tracer
    >>> tracer = Tracer(InMemorySink())
    >>> with tracer.span("round") as round_span:
    ...     with tracer.span("lbi") as lbi:
    ...         lbi.event("lbi.level", level=3, messages_up=4)
    >>> [r.kind for r in tracer.sink.records]
    ['span_start', 'span_start', 'event', 'span_end', 'span_end']
    """

    def __init__(self, sink: Sink | None = None) -> None:
        """Create a tracer emitting to ``sink`` (``None`` = disabled)."""
        if sink is None or isinstance(sink, NullSink):
            sink = NullSink()
            self.enabled = False
        else:
            self.enabled = True
        self.sink = sink
        self._seq = 0
        self._next_span_id = 1
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()

    # -- constructors ----------------------------------------------------
    @classmethod
    def to_file(cls, path: str | Path) -> "Tracer":
        """A tracer writing JSONL records to ``path``."""
        return cls(JSONLSink(path))

    @classmethod
    def in_memory(cls) -> "Tracer":
        """A tracer collecting records in memory (tests, examples)."""
        return cls(InMemorySink())

    # -- emission --------------------------------------------------------
    def _emit(
        self,
        kind: str,
        name: str,
        span_id: int,
        parent_id: int | None,
        fields: Mapping[str, Any],
    ) -> None:
        if not self.enabled:
            return
        record = TraceRecord(
            kind=kind,
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            seq=self._seq,
            t=time.perf_counter() - self._epoch,
            fields=fields,
        )
        self._seq += 1
        self.sink.emit(record)

    def span(self, name: str, **fields: Any) -> Span | _NullSpan:
        """Open a child span of the current one (root span otherwise)."""
        if not self.enabled:
            return _NULL_SPAN
        parent_id = self._stack[-1].span_id if self._stack else None
        span_id = self._next_span_id
        self._next_span_id += 1
        span = Span(self, name, span_id, parent_id)
        self._stack.append(span)
        self._emit("span_start", name, span_id, parent_id, fields)
        return span

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point event in the current span (span id 0 at top level)."""
        if not self.enabled:
            return
        if self._stack:
            top = self._stack[-1]
            self._emit("event", name, top.span_id, top.parent_id, fields)
        else:
            self._emit("event", name, 0, None, fields)

    def close(self) -> None:
        """Close any dangling spans and flush/close the sink."""
        while self._stack:
            self._stack[-1].end()
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, sink={self.sink!r}, seq={self._seq})"


#: The shared disabled tracer used wherever no tracer was supplied.
NULL_TRACER = Tracer(None)
