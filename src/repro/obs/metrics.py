"""Named counters, gauges and histograms with quantile summaries.

A :class:`MetricsRegistry` is a flat namespace of instruments, created
on first use (``registry.counter("vst.transfers")``) so call sites never
need registration boilerplate.  Instruments are deliberately simple
Python objects — a counter increment is one attribute add — because they
sit on the balancer's hot paths; anything heavier (locking, label sets,
exposition formats) belongs in an exporter built on
:meth:`MetricsRegistry.snapshot`.

Naming convention used throughout the package: ``<phase>.<what>``
(``lbi.messages_up``, ``vsa.pairings``, ``vst.moved_load``) so a
snapshot sorts into per-phase blocks.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import ReproError

#: Quantiles reported by :meth:`Histogram.summary`.
SUMMARY_QUANTILES = (0.5, 0.9, 0.95, 0.99)


class Counter:
    """A monotonically increasing count (messages, transfers, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        """Create the counter ``name`` starting at zero."""
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative; counters never go down)."""
        if amount < 0:
            raise ReproError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (heavy-node count, tree height, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        """Create the gauge ``name`` starting at zero."""
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self.value -= amount


class Histogram:
    """A distribution of observations with on-demand quantile summaries.

    Samples are kept in full (simulation rounds observe at most a few
    thousand values per instrument); ``count``/``total``/``min``/``max``
    are maintained incrementally so the hot-path cost of
    :meth:`observe` is one append plus two comparisons.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_samples")

    def __init__(self, name: str) -> None:
        """Create the histogram ``name`` with no observations."""
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._samples.append(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of all observations (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        return float(np.quantile(np.asarray(self._samples), q))

    def summary(self) -> dict[str, float]:
        """JSON-friendly digest: count, sum, mean, min/max and quantiles."""
        out = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }
        if self.count:
            samples = np.asarray(self._samples)
            for q in SUMMARY_QUANTILES:
                out[f"p{int(q * 100)}"] = float(np.quantile(samples, q))
        return out


class MetricsRegistry:
    """A flat, create-on-first-use namespace of instruments.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("vst.transfers").inc()
    >>> reg.histogram("vst.distance").observe(2.0)
    >>> reg.snapshot()["counters"]["vst.transfers"]
    1.0
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) ---------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first access."""
        c = self._counters.get(name)
        if c is None:
            self._check_free(name)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first access."""
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created on first access."""
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name)
            h = self._histograms[name] = Histogram(name)
        return h

    def _check_free(self, name: str) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if name in table:
                raise ReproError(f"metric {name!r} already exists as a {kind}")

    # -- merging ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s instruments into this registry in place.

        Designed for the parallel trial engine: each worker process
        accumulates into a fresh registry and the parent merges the
        per-trial registries back **in trial order**, so a merged
        registry matches what a serial run logging directly into one
        registry would hold.  Merge semantics per instrument kind:

        * counters — values add (integer-valued counters merge exactly;
          float-valued counters are equal to a serial run up to float
          summation order);
        * gauges — last write wins (``other``'s value replaces ours),
          matching serial behaviour where the latest trial's ``set``
          sticks;
        * histograms — observation lists concatenate in ``other``'s
          recording order, and count/total/min/max are recomputed
          incrementally.

        A name registered as different instrument kinds in the two
        registries raises :class:`~repro.exceptions.ReproError`.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other._histograms.items():
            mine = self.histogram(name)
            for value in hist._samples:
                mine.observe(value)

    # -- export ----------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All instrument values as one JSON-friendly nested dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def write_json(self, path: str | Path) -> Path:
        """Write :meth:`snapshot` to ``path`` as indented JSON."""
        out = Path(path)
        out.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return out

    def format_text(self) -> str:
        """Multi-line human-readable dump (operator console / examples)."""
        snap = self.snapshot()
        lines: list[str] = []
        for name, value in snap["counters"].items():
            lines.append(f"{name:<40} {value:.6g}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name:<40} {value:.6g} (gauge)")
        for name, s in snap["histograms"].items():
            lines.append(
                f"{name:<40} n={s['count']} mean={s['mean']:.4g} "
                f"p50={s.get('p50', 0.0):.4g} p95={s.get('p95', 0.0):.4g} "
                f"max={s['max']:.4g}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
