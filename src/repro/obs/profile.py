"""The per-phase profile a balancing round reports.

:class:`RoundProfile` condenses one round into four
:class:`PhaseProfile` rows — LBI aggregation, classification, VSA,
VST — each carrying wall-clock seconds, the message count the phase put
on the wire, and phase-specific detail (reports merged, pairings per KT
level, load moved over what distance).  It is cheap to build (pure
arithmetic over traces the round already collected, no tracing
required), so :class:`~repro.core.report.BalanceReport` carries one
unconditionally.

The message accounting matches the paper's cost model: LBI counts both
tree sweeps, classification is a purely local computation (zero
messages), VSA counts upward forwarding of unpaired entries, VST counts
one transfer message per executed virtual-server move.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only (report imports profile)
    from repro.core.report import BalanceReport

#: Canonical phase order of the protocol.
PHASE_ORDER = ("lbi", "classification", "vsa", "vst")


class PhaseClock:
    """Measures per-phase wall-clock durations on behalf of protocol code.

    Protocol modules (``core``/``dht``/``ktree``/``sim``) are forbidden
    from reading the clock directly — a wall-clock value that leaks into
    a protocol decision silently breaks the runs-are-a-pure-function-of-
    the-seed contract (enforced by the ``no-wallclock-in-protocol`` lint
    rule).  ``PhaseClock`` is the sanctioned indirection: it owns
    ``time.perf_counter`` inside the observability layer and hands the
    protocol only *completed* durations, which are measurement outputs
    to report, never inputs to branch on.

    Usage::

        clock = PhaseClock()
        with clock.phase("lbi"):
            ...  # phase 1 work
        clock.seconds  # {"lbi": 0.0123}

    Re-entering a phase name accumulates (useful for phases split across
    several blocks).  The mapping in :attr:`seconds` is a plain dict and
    can be stored on a report directly.
    """

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    def phase(self, name: str) -> "_PhaseTimer":
        """A context manager timing one ``with`` block under ``name``."""
        return _PhaseTimer(self, name)

    def total(self) -> float:
        """Seconds summed over all recorded phases."""
        return sum(self.seconds.values())


class _PhaseTimer:
    """Context manager accumulating one block's duration into a clock."""

    __slots__ = ("_clock", "_name", "_t0")

    def __init__(self, clock: PhaseClock, name: str) -> None:
        self._clock = clock
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        elapsed = time.perf_counter() - self._t0
        self._clock.seconds[self._name] = (
            self._clock.seconds.get(self._name, 0.0) + elapsed
        )


@dataclass(frozen=True)
class PhaseProfile:
    """Cost digest of one protocol phase within one round."""

    name: str  # one of PHASE_ORDER
    seconds: float  # simulator wall-clock spent in the phase
    messages: int  # messages the phase put on the (simulated) wire
    detail: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "messages": self.messages,
            "detail": dict(self.detail),
        }


@dataclass(frozen=True)
class RoundProfile:
    """The four phase profiles of one balancing round, in protocol order."""

    phases: tuple[PhaseProfile, ...]

    def phase(self, name: str) -> PhaseProfile:
        """The profile of phase ``name`` (raises ``KeyError`` if absent)."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds summed over the phases."""
        return sum(p.seconds for p in self.phases)

    @property
    def total_messages(self) -> int:
        """Messages summed over the phases (the round's control+data cost)."""
        return sum(p.messages for p in self.phases)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict keyed by phase name."""
        return {p.name: p.to_dict() for p in self.phases}

    def table(self) -> str:
        """Fixed-width per-phase cost table (operator console, examples)."""
        header = f"{'phase':<16}{'seconds':>10}{'msgs':>8}  detail"
        rows = [header, "-" * len(header)]
        for p in self.phases:
            detail = " ".join(f"{k}={_fmt(v)}" for k, v in p.detail.items())
            rows.append(f"{p.name:<16}{p.seconds:>10.4f}{p.messages:>8}  {detail}")
        rows.append(
            f"{'total':<16}{self.total_seconds:>10.4f}{self.total_messages:>8}"
        )
        return "\n".join(rows)


def profile_from_report(report: "BalanceReport") -> RoundProfile:
    """Assemble the :class:`RoundProfile` of a completed round.

    Uses only data the round already measured (phase timings, the
    aggregation trace, the VSA result, the transfer records), so it is
    valid whether or not tracing was enabled.
    """
    agg = report.aggregation
    vsa = report.vsa
    seconds = report.phase_seconds
    transfers = report.transfers
    distances = [t.distance for t in transfers if t.has_distance]
    before = report.classification_before.counts()
    phases = (
        PhaseProfile(
            name="lbi",
            seconds=seconds.get("lbi", 0.0),
            messages=agg.total_messages,
            detail={
                "reports": agg.reports,
                "messages_up": agg.upward_messages,
                "messages_down": agg.downward_messages,
                "rounds": agg.total_rounds,
                "tree_height": agg.tree_height,
            },
        ),
        PhaseProfile(
            name="classification",
            seconds=seconds.get("classification", 0.0),
            messages=0,
            detail=dict(before),
        ),
        PhaseProfile(
            name="vsa",
            seconds=seconds.get("vsa", 0.0),
            messages=vsa.upward_messages,
            detail={
                "entries_published": vsa.entries_published,
                "pairings": len(vsa.assignments),
                "unassigned_heavy": len(vsa.unassigned_heavy),
                "unassigned_light": len(vsa.unassigned_light),
                "rounds": vsa.rounds,
            },
        ),
        PhaseProfile(
            name="vst",
            seconds=seconds.get("vst", 0.0),
            messages=len(transfers),
            detail={
                "transfers": len(transfers),
                "skipped": len(report.skipped_assignments),
                "moved_load": report.moved_load,
                "mean_distance": (
                    sum(distances) / len(distances) if distances else math.nan
                ),
            },
        ),
    )
    return RoundProfile(phases=phases)


def _fmt(value: object) -> str:
    """Compact scalar formatting for table cells."""
    if isinstance(value, float):
        return "nan" if math.isnan(value) else f"{value:.4g}"
    return str(value)
