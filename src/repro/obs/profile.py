"""The per-phase profile a balancing round reports.

:class:`RoundProfile` condenses one round into four
:class:`PhaseProfile` rows — LBI aggregation, classification, VSA,
VST — each carrying wall-clock seconds, the message count the phase put
on the wire, and phase-specific detail (reports merged, pairings per KT
level, load moved over what distance).  It is cheap to build (pure
arithmetic over traces the round already collected, no tracing
required), so :class:`~repro.core.report.BalanceReport` carries one
unconditionally.

The message accounting matches the paper's cost model: LBI counts both
tree sweeps, classification is a purely local computation (zero
messages), VSA counts upward forwarding of unpaired entries, VST counts
one transfer message per executed virtual-server move.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only (report imports profile)
    from repro.core.report import BalanceReport

#: Canonical phase order of the protocol.
PHASE_ORDER = ("lbi", "classification", "vsa", "vst")


@dataclass(frozen=True)
class PhaseProfile:
    """Cost digest of one protocol phase within one round."""

    name: str  # one of PHASE_ORDER
    seconds: float  # simulator wall-clock spent in the phase
    messages: int  # messages the phase put on the (simulated) wire
    detail: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "messages": self.messages,
            "detail": dict(self.detail),
        }


@dataclass(frozen=True)
class RoundProfile:
    """The four phase profiles of one balancing round, in protocol order."""

    phases: tuple[PhaseProfile, ...]

    def phase(self, name: str) -> PhaseProfile:
        """The profile of phase ``name`` (raises ``KeyError`` if absent)."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds summed over the phases."""
        return sum(p.seconds for p in self.phases)

    @property
    def total_messages(self) -> int:
        """Messages summed over the phases (the round's control+data cost)."""
        return sum(p.messages for p in self.phases)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict keyed by phase name."""
        return {p.name: p.to_dict() for p in self.phases}

    def table(self) -> str:
        """Fixed-width per-phase cost table (operator console, examples)."""
        header = f"{'phase':<16}{'seconds':>10}{'msgs':>8}  detail"
        rows = [header, "-" * len(header)]
        for p in self.phases:
            detail = " ".join(f"{k}={_fmt(v)}" for k, v in p.detail.items())
            rows.append(f"{p.name:<16}{p.seconds:>10.4f}{p.messages:>8}  {detail}")
        rows.append(
            f"{'total':<16}{self.total_seconds:>10.4f}{self.total_messages:>8}"
        )
        return "\n".join(rows)


def profile_from_report(report: "BalanceReport") -> RoundProfile:
    """Assemble the :class:`RoundProfile` of a completed round.

    Uses only data the round already measured (phase timings, the
    aggregation trace, the VSA result, the transfer records), so it is
    valid whether or not tracing was enabled.
    """
    agg = report.aggregation
    vsa = report.vsa
    seconds = report.phase_seconds
    transfers = report.transfers
    distances = [t.distance for t in transfers if t.has_distance]
    before = report.classification_before.counts()
    phases = (
        PhaseProfile(
            name="lbi",
            seconds=seconds.get("lbi", 0.0),
            messages=agg.total_messages,
            detail={
                "reports": agg.reports,
                "messages_up": agg.upward_messages,
                "messages_down": agg.downward_messages,
                "rounds": agg.total_rounds,
                "tree_height": agg.tree_height,
            },
        ),
        PhaseProfile(
            name="classification",
            seconds=seconds.get("classification", 0.0),
            messages=0,
            detail=dict(before),
        ),
        PhaseProfile(
            name="vsa",
            seconds=seconds.get("vsa", 0.0),
            messages=vsa.upward_messages,
            detail={
                "entries_published": vsa.entries_published,
                "pairings": len(vsa.assignments),
                "unassigned_heavy": len(vsa.unassigned_heavy),
                "unassigned_light": len(vsa.unassigned_light),
                "rounds": vsa.rounds,
            },
        ),
        PhaseProfile(
            name="vst",
            seconds=seconds.get("vst", 0.0),
            messages=len(transfers),
            detail={
                "transfers": len(transfers),
                "skipped": len(report.skipped_assignments),
                "moved_load": report.moved_load,
                "mean_distance": (
                    sum(distances) / len(distances) if distances else math.nan
                ),
            },
        ),
    )
    return RoundProfile(phases=phases)


def _fmt(value) -> str:
    """Compact scalar formatting for table cells."""
    if isinstance(value, float):
        return "nan" if math.isnan(value) else f"{value:.4g}"
    return str(value)
