"""Trace sinks: where :class:`~repro.obs.trace.TraceRecord` streams go.

Four implementations cover the intended uses:

* :class:`NullSink` — swallows everything; the zero-overhead default.
* :class:`InMemorySink` — a list of records; unit/integration tests and
  interactive inspection.
* :class:`JSONLSink` — one JSON object per line; offline analysis
  (``jq``, pandas) and the CLI ``--trace`` flag.
* :class:`ConsoleSink` — indented human-readable lines on a stream;
  watching a round live.

A sink only needs ``emit(record)`` and ``close()``; anything matching
the :class:`Sink` protocol (e.g. a socket forwarder) plugs into
:class:`~repro.obs.trace.Tracer` unchanged.
"""

from __future__ import annotations

import io
import json
import os
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Protocol, TextIO, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace imports sinks)
    from repro.obs.trace import TraceRecord


@runtime_checkable
class Sink(Protocol):
    """Anything that can receive a stream of trace records."""

    def emit(self, record: "TraceRecord") -> None:
        """Receive one record (called in stream order)."""

    def close(self) -> None:
        """Flush and release resources; no ``emit`` may follow."""


class NullSink:
    """Discards every record — the zero-overhead default."""

    __slots__ = ()

    def emit(self, record: "TraceRecord") -> None:
        """Discard ``record``."""

    def close(self) -> None:
        """No-op."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullSink()"


class InMemorySink:
    """Collects records in a list (``sink.records``)."""

    def __init__(self) -> None:
        self.records: list["TraceRecord"] = []
        self.closed = False

    def emit(self, record: "TraceRecord") -> None:
        """Append ``record`` to :attr:`records`."""
        self.records.append(record)

    def close(self) -> None:
        """Mark the sink closed (records stay readable)."""
        self.closed = True

    def by_name(self, name: str) -> list["TraceRecord"]:
        """All records whose name matches (spans and events alike)."""
        return [r for r in self.records if r.name == name]

    def events(self, name: str | None = None) -> list["TraceRecord"]:
        """All ``event`` records, optionally filtered by name."""
        return [
            r
            for r in self.records
            if r.kind == "event" and (name is None or r.name == name)
        ]

    def spans(self, name: str | None = None) -> list["TraceRecord"]:
        """All ``span_end`` records (the completed spans with durations)."""
        return [
            r
            for r in self.records
            if r.kind == "span_end" and (name is None or r.name == name)
        ]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InMemorySink({len(self.records)} records)"


class JSONLSink:
    """Writes one JSON object per record to a file (JSON Lines).

    The file is opened eagerly so a bad path fails at construction, not
    mid-round.  Lines are buffered by the underlying file object;
    ``close()`` flushes.

    ``append`` reopens an existing stream instead of truncating it, and
    ``sync`` makes each line durable (flush + ``os.fsync``) before
    ``emit`` returns — the write-ahead discipline
    :mod:`repro.recovery.journal` relies on for files sharing this JSON
    Lines shape.  Both default off: plain tracing keeps the cheap
    buffered behavior.
    """

    def __init__(
        self,
        path: str | Path,
        append: bool = False,
        sync: bool = False,
    ) -> None:
        """Open ``path`` for writing (fails fast on bad paths)."""
        self.path = Path(path)
        self._fh: io.TextIOWrapper | None = self.path.open(
            "a" if append else "w"
        )
        self.sync = sync
        self.lines_written = 0

    def emit(self, record: "TraceRecord") -> None:
        """Write ``record`` as one JSON line (durably when ``sync``)."""
        if self._fh is None:
            raise ValueError(f"JSONLSink({self.path}) is closed")
        self._fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        if self.sync:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self.lines_written += 1

    def close(self) -> None:
        """Flush and close the file; further emits raise."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JSONLSink({str(self.path)!r}, lines={self.lines_written})"


class ConsoleSink:
    """Human-readable, span-indented rendering to a text stream."""

    def __init__(self, stream: TextIO | None = None) -> None:
        """Render to ``stream`` (default: ``sys.stdout``, not owned)."""
        self.stream = stream if stream is not None else sys.stdout
        self._depth = 0

    def emit(self, record: "TraceRecord") -> None:
        """Render ``record`` as one indented console line."""
        if record.kind == "span_end":
            self._depth = max(0, self._depth - 1)
        pad = "  " * self._depth
        fields = " ".join(f"{k}={_fmt(v)}" for k, v in record.fields.items())
        marker = {"span_start": ">", "span_end": "<", "event": "."}.get(
            record.kind, "?"
        )
        self.stream.write(
            f"{record.t:10.6f} {pad}{marker} {record.name}"
            + (f" {fields}" if fields else "")
            + "\n"
        )
        if record.kind == "span_start":
            self._depth += 1

    def close(self) -> None:
        """Flush the stream (which is not owned, so not closed)."""
        self.stream.flush()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConsoleSink(depth={self._depth})"


def _fmt(value: object) -> str:
    """Compact scalar formatting for console lines."""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
