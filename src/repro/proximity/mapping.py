"""End-to-end mapping: landmark vector -> Hilbert number -> DHT key.

:class:`ProximityMapper` packages the full pipeline of Section 4.2.1:
quantise a landmark vector onto the grid, walk the m-dimensional Hilbert
curve to get the *Hilbert number*, and rescale that number onto the DHT's
identifier ring so it can be used as a ``put`` key.

Rescaling keeps order: the Hilbert index has ``m * bits`` bits while the
ring has ``space.bits``; the index is shifted so its most significant
bits populate the key.  Order (and therefore locality) is preserved —
only resolution changes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProximityError
from repro.idspace import IdentifierSpace
from repro.proximity.hilbert import HilbertCurve
from repro.proximity.landmark_vector import GridQuantizer


class ProximityMapper:
    """Maps landmark vectors to DHT keys, preserving physical locality.

    Parameters
    ----------
    dims:
        Landmark count ``m`` (paper default 15).
    grid_bits:
        Grid order: bits per landmark-space dimension (paper's ``n``
        controls the total cell count ``2^(dims * grid_bits)``).
    quantizer:
        The fitted :class:`GridQuantizer`; build one with
        :meth:`ProximityMapper.fit` when bounds come from measured data.

    Examples
    --------
    >>> vecs = np.array([[0.0, 1.0], [0.1, 1.1], [9.0, 5.0]])
    >>> mapper = ProximityMapper.fit(vecs, grid_bits=3)
    >>> keys = mapper.dht_keys(vecs, IdentifierSpace(bits=16))
    >>> abs(keys[0] - keys[1]) < abs(keys[0] - keys[2])
    True
    """

    def __init__(self, dims: int, grid_bits: int, quantizer: GridQuantizer) -> None:
        if quantizer.bits != grid_bits:
            raise ProximityError(
                f"quantizer bits ({quantizer.bits}) != grid_bits ({grid_bits})"
            )
        self.dims = dims
        self.grid_bits = grid_bits
        self.quantizer = quantizer
        self.curve = HilbertCurve(dims=dims, bits=grid_bits)

    @classmethod
    def fit(
        cls, vectors: np.ndarray, grid_bits: int, margin: float = 0.05
    ) -> "ProximityMapper":
        """Build a mapper whose grid bounds are fitted to ``vectors``."""
        arr = np.asarray(vectors, dtype=np.float64)
        if arr.ndim != 2:
            raise ProximityError("vectors must be a 2-D (n, m) array")
        quant = GridQuantizer.fit(arr, bits=grid_bits, margin=margin)
        return cls(dims=arr.shape[1], grid_bits=grid_bits, quantizer=quant)

    # ------------------------------------------------------------------
    def hilbert_numbers(self, vectors: np.ndarray) -> list[int]:
        """Hilbert number of each landmark vector (arbitrary-precision ints)."""
        cells = self.quantizer.quantize(vectors)
        if cells.shape[1] != self.dims:
            raise ProximityError(
                f"vectors have {cells.shape[1]} dims, expected {self.dims}"
            )
        return self.curve.encode_many(cells)

    def dht_keys(self, vectors: np.ndarray, space: IdentifierSpace) -> np.ndarray:
        """DHT key for each landmark vector on ``space``.

        The Hilbert index's most significant bits become the key, so key
        order equals Hilbert order.
        """
        if space.bits > 62:
            raise ProximityError("dht_keys supports identifier spaces up to 62 bits")
        numbers = self.hilbert_numbers(vectors)
        shift = self.curve.index_bits - space.bits
        if shift >= 0:
            keys = [n >> shift for n in numbers]
        else:
            keys = [n << (-shift) for n in numbers]
        return np.asarray(keys, dtype=np.int64)

    def dht_key(self, vector: np.ndarray, space: IdentifierSpace) -> int:
        """Single-vector convenience wrapper around :meth:`dht_keys`."""
        arr = np.asarray(vector, dtype=np.float64)
        return int(self.dht_keys(arr[None, :], space)[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProximityMapper(dims={self.dims}, grid_bits={self.grid_bits})"
