"""m-dimensional Hilbert space-filling curve (Skilling's algorithm).

Implements the transpose-based encoding of J. Skilling, "Programming the
Hilbert curve", AIP Conf. Proc. 707 (2004): a bijection between points of
the ``dims``-dimensional grid ``[0, 2^bits)^dims`` and indices in
``[0, 2^(dims*bits))`` such that consecutive indices map to grid points
that differ by exactly 1 in exactly one coordinate — the locality
property the paper relies on ("points that are close together in the
m-dimensional space will be mapped to points that are close together in
the 1-dimensional space").

Both directions (encode and decode) are provided and property-tested for
bijectivity and the unit-step adjacency invariant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import HilbertError


class HilbertCurve:
    """A Hilbert curve over ``[0, 2^bits)^dims``.

    Parameters
    ----------
    dims:
        Dimensionality ``m`` of the space (the paper's landmark count, 15).
    bits:
        Bits of resolution per dimension (the grid order); the landmark
        space is divided into ``2^(dims*bits)`` cells.
    """

    def __init__(self, dims: int, bits: int) -> None:
        if not isinstance(dims, int) or dims < 1:
            raise HilbertError(f"dims must be a positive integer, got {dims!r}")
        if not isinstance(bits, int) or bits < 1:
            raise HilbertError(f"bits must be a positive integer, got {bits!r}")
        if dims * bits > 1024:
            raise HilbertError(f"dims*bits = {dims * bits} too large (max 1024)")
        self.dims = dims
        self.bits = bits

    # ------------------------------------------------------------------
    @property
    def index_bits(self) -> int:
        """Total bits of a Hilbert index (``dims * bits``)."""
        return self.dims * self.bits

    @property
    def max_index(self) -> int:
        return (1 << self.index_bits) - 1

    @property
    def side(self) -> int:
        """Grid side length ``2^bits`` per dimension."""
        return 1 << self.bits

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def encode(self, point: Sequence[int]) -> int:
        """Hilbert index of a grid point."""
        coords = self._check_point(point)
        transpose = self._axes_to_transpose(coords)
        return self._transpose_to_index(transpose)

    def decode(self, index: int) -> tuple[int, ...]:
        """Grid point of a Hilbert index."""
        if not isinstance(index, int) or not 0 <= index <= self.max_index:
            raise HilbertError(
                f"index {index!r} out of range [0, {self.max_index}]"
            )
        transpose = self._index_to_transpose(index)
        return tuple(self._transpose_to_axes(transpose))

    def encode_many(self, points: np.ndarray) -> list[int]:
        """Encode an ``(n, dims)`` integer array of grid points.

        Returned as a Python list because indices may exceed 64 bits
        (e.g. 15 dims x 8 bits = 120-bit indices).
        """
        arr = np.asarray(points)
        if arr.ndim != 2 or arr.shape[1] != self.dims:
            raise HilbertError(
                f"points must have shape (n, {self.dims}), got {arr.shape}"
            )
        return [self.encode([int(v) for v in row]) for row in arr]

    # ------------------------------------------------------------------
    # Skilling's transforms
    # ------------------------------------------------------------------
    def _check_point(self, point: Sequence[int]) -> list[int]:
        coords = [int(c) for c in point]
        if len(coords) != self.dims:
            raise HilbertError(
                f"point has {len(coords)} coordinates, expected {self.dims}"
            )
        side = self.side
        for c in coords:
            if not 0 <= c < side:
                raise HilbertError(f"coordinate {c} out of range [0, {side})")
        return coords

    def _axes_to_transpose(self, x: list[int]) -> list[int]:
        """Map grid coordinates to Skilling's transposed Hilbert form."""
        X = list(x)
        n = self.dims
        M = 1 << (self.bits - 1)
        # Inverse undo excess work
        Q = M
        while Q > 1:
            P = Q - 1
            for i in range(n):
                if X[i] & Q:
                    X[0] ^= P
                else:
                    t = (X[0] ^ X[i]) & P
                    X[0] ^= t
                    X[i] ^= t
            Q >>= 1
        # Gray encode
        for i in range(1, n):
            X[i] ^= X[i - 1]
        t = 0
        Q = M
        while Q > 1:
            if X[n - 1] & Q:
                t ^= Q - 1
            Q >>= 1
        for i in range(n):
            X[i] ^= t
        return X

    def _transpose_to_axes(self, x: list[int]) -> list[int]:
        """Inverse of :meth:`_axes_to_transpose`."""
        X = list(x)
        n = self.dims
        N = 2 << (self.bits - 1)
        # Gray decode by H ^ (H/2)
        t = X[n - 1] >> 1
        for i in range(n - 1, 0, -1):
            X[i] ^= X[i - 1]
        X[0] ^= t
        # Undo excess work
        Q = 2
        while Q != N:
            P = Q - 1
            for i in range(n - 1, -1, -1):
                if X[i] & Q:
                    X[0] ^= P
                else:
                    t = (X[0] ^ X[i]) & P
                    X[0] ^= t
                    X[i] ^= t
            Q <<= 1
        return X

    # ------------------------------------------------------------------
    # Bit interleaving between transpose form and a single integer index
    # ------------------------------------------------------------------
    def _transpose_to_index(self, X: list[int]) -> int:
        h = 0
        for b in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                h = (h << 1) | ((X[i] >> b) & 1)
        return h

    def _index_to_transpose(self, h: int) -> list[int]:
        X = [0] * self.dims
        pos = self.index_bits
        for b in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                pos -= 1
                if (h >> pos) & 1:
                    X[i] |= 1 << b
        return X

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HilbertCurve(dims={self.dims}, bits={self.bits})"
