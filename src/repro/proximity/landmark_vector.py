"""Quantising landmark vectors onto the Hilbert grid.

The continuous m-dimensional landmark space is divided into equal-size
grid cells (Section 4.2.1); a node's cell is determined by binning each
landmark distance into ``2^bits`` intervals.  A smaller grid order
"increases the likelihood that two physically close nodes have the same
Hilbert number" — the grid order is therefore an explicit ablation knob.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ProximityError


class GridQuantizer:
    """Uniform per-dimension binning of landmark vectors.

    Parameters
    ----------
    bits:
        Bits per dimension (``2^bits`` bins per landmark distance).
    low, high:
        Bounds of each dimension.  Pass scalars to share bounds across
        dimensions (the natural choice: all dimensions are latencies on
        the same network) or arrays of length ``m`` for per-dimension
        bounds.  Use :meth:`fit` to derive bounds from a sample.
    """

    def __init__(
        self, bits: int, low: float | np.ndarray, high: float | np.ndarray
    ) -> None:
        if not isinstance(bits, int) or bits < 1:
            raise ProximityError(f"bits must be a positive integer, got {bits!r}")
        self.bits = bits
        self.low = np.asarray(low, dtype=np.float64)
        self.high = np.asarray(high, dtype=np.float64)
        if np.any(self.high <= self.low):
            raise ProximityError("quantizer bounds require high > low")

    @classmethod
    def fit(cls, vectors: np.ndarray, bits: int, margin: float = 0.0) -> "GridQuantizer":
        """Derive shared bounds from a sample of landmark vectors.

        ``margin`` expands the range by a relative amount on both sides so
        later-measured vectors slightly outside the sample still quantise
        (they are clipped regardless).
        """
        arr = np.asarray(vectors, dtype=np.float64)
        if arr.ndim != 2 or arr.size == 0:
            raise ProximityError("fit() needs a non-empty (n, m) array")
        lo = float(arr.min())
        hi = float(arr.max())
        if hi <= lo:
            hi = lo + 1.0
        span = hi - lo
        return cls(bits=bits, low=lo - margin * span, high=hi + margin * span)

    @property
    def bins(self) -> int:
        return 1 << self.bits

    def quantize(self, vectors: np.ndarray) -> np.ndarray:
        """Map ``(n, m)`` landmark vectors to integer grid cells.

        Values outside the bounds are clipped into the boundary bins.
        """
        arr = np.asarray(vectors, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        scaled = (arr - self.low) / (self.high - self.low) * self.bins
        cells = np.floor(scaled).astype(np.int64)
        np.clip(cells, 0, self.bins - 1, out=cells)
        return cells
