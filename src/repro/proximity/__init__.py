"""Proximity machinery: landmark vectors -> Hilbert numbers -> DHT keys.

The paper's key idea (Section 4) is to *preserve physical proximity in
the identifier space*: every heavy/light node measures a landmark vector,
the m-dimensional landmark space is divided into a grid, grid cells are
numbered along an m-dimensional Hilbert space-filling curve, and the
resulting *Hilbert number* is used as the DHT key under which the node
publishes its VSA information.  Because the Hilbert curve preserves
locality, physically close nodes publish under nearby keys and meet low
in the K-nary tree during the bottom-up assignment sweep.
"""

from repro.proximity.hilbert import HilbertCurve
from repro.proximity.landmark_vector import GridQuantizer
from repro.proximity.mapping import ProximityMapper

__all__ = ["HilbertCurve", "GridQuantizer", "ProximityMapper"]
