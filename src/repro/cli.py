"""Command-line interface: ``repro-p2plb`` (or ``python -m repro.cli``).

Examples::

    repro-p2plb list
    repro-p2plb run fig4 --nodes 1024 --seed 7
    repro-p2plb run fig7 --scale paper
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from repro.experiments.common import ExperimentSettings
from repro.experiments.registry import get_experiment, list_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-p2plb",
        description=(
            "Reproduction of 'Towards Efficient Load Balancing in "
            "Structured P2P Systems' (Zhu & Hu, 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", help="experiment id (see 'list')")
    run.add_argument("--nodes", type=int, default=None, help="number of DHT nodes")
    run.add_argument("--vs", type=int, default=None, help="virtual servers per node")
    run.add_argument("--seed", type=int, default=None, help="scenario seed")
    run.add_argument("--epsilon", type=float, default=None, help="target-load slack")
    run.add_argument("--tree-degree", type=int, default=None, help="K-nary tree degree")
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for seed sweeps (variance/chaos); "
        "results are identical to serial runs, only faster",
    )
    run.add_argument(
        "--scale",
        choices=["quick", "paper"],
        default="quick",
        help="preset scale (paper = 4096 nodes)",
    )
    run.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="write the experiment's figure data as CSV/JSON into DIR",
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="render the figure as ASCII art in the terminal",
    )
    run.add_argument(
        "--fault-drop",
        type=float,
        action="append",
        default=None,
        metavar="P",
        help="chaos only: message-drop probability to sweep (repeatable)",
    )
    run.add_argument(
        "--fault-crash",
        type=int,
        default=None,
        metavar="N",
        help="chaos only: mid-round node crashes injected per round",
    )
    run.add_argument(
        "--fault-abort",
        type=float,
        default=None,
        metavar="P",
        help="chaos only: per-transfer abort probability",
    )
    run.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="chaos/partition: fault-injector seed (default: scenario seed)",
    )
    run.add_argument(
        "--partition-components",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help="partition only: component count to sweep (repeatable)",
    )
    run.add_argument(
        "--partition-duration",
        type=int,
        default=None,
        metavar="ROUNDS",
        help="partition only: rounds the partition stays active",
    )
    run.add_argument(
        "--fault-corrupt",
        type=float,
        default=None,
        metavar="P",
        help="partition only: per-report LBI corruption probability "
        "(exercises the aggregate sanity defense)",
    )
    run.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a structured JSONL trace of every balancing round to FILE",
    )
    run.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the accumulated metrics snapshot to FILE as JSON",
    )
    run.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="durable-state directory for crash recovery (journal + "
        "checkpoints); sets REPRO_STATE_DIR for everything this run "
        "constructs (default: $REPRO_STATE_DIR or .repro-state)",
    )

    report = sub.add_parser(
        "report", help="run every experiment and write one markdown report"
    )
    report.add_argument(
        "-o", "--output", default="REPORT.md", help="output markdown path"
    )
    report.add_argument(
        "--scale", choices=["quick", "paper"], default="quick",
        help="preset scale (paper = 4096 nodes)",
    )
    report.add_argument(
        "--only", nargs="*", default=None,
        help="restrict to these experiment ids",
    )
    return parser


def _plot_result(experiment: str, result) -> str | None:
    """Render a text plot for experiments that have a natural one."""
    import numpy as np

    from repro.analysis.text_plots import ascii_cdf, ascii_histogram, side_by_side

    data = getattr(result, "data", None)
    if data is None:
        return None
    if experiment == "fig4":
        bins = np.percentile(data.unit_before, [0, 25, 50, 75, 90, 99, 100])
        labels = ["min", "p25", "median", "p75", "p90", "p99", "max"]
        before = ascii_histogram(labels, bins, width=30)
        bins_after = np.percentile(data.unit_after, [0, 25, 50, 75, 90, 99, 100])
        after = ascii_histogram(labels, bins_after, width=30)
        return (
            "unit load percentiles before | after balancing\n"
            + side_by_side(before, after)
        )
    if experiment in ("fig7", "fig8"):
        aware = ascii_cdf(*data.aware_cdf, width=34, height=10)
        ignorant = ascii_cdf(*data.ignorant_cdf, width=34, height=10)
        return (
            "moved-load CDF over distance: aware (left) vs ignorant (right)\n"
            + side_by_side(aware, ignorant)
        )
    return None


def _export_result(experiment: str, result, directory: str) -> list[str]:
    """Write the figure data files an experiment result supports."""
    from pathlib import Path

    from repro.analysis import export as ex

    out_dir = Path(directory)
    written: list[str] = []
    data = getattr(result, "data", None)
    if experiment == "fig4" and data is not None:
        written.append(str(ex.export_figure4_csv(data, out_dir / "fig4.csv")))
    elif experiment in ("fig5", "fig6") and data is not None:
        written.append(
            str(ex.export_figure56_csv(data, out_dir / f"{experiment}.csv"))
        )
    elif experiment in ("fig7", "fig8") and data is not None:
        written.append(
            str(ex.export_figure78_csv(data, out_dir / f"{experiment}.csv"))
        )
        written.append(
            str(ex.export_figure78_json(data, out_dir / f"{experiment}.json"))
        )
    return written


def _run_observed(runner, settings, trace_path: str | None, metrics_path: str | None):
    """Run ``runner(settings)``, optionally under process-wide observability.

    ``--trace FILE`` installs a JSONL tracer and ``--metrics-out FILE`` a
    metrics registry for the duration of the run; every balancer the
    experiment constructs picks them up via :mod:`repro.obs.runtime`.
    """
    if trace_path is None and metrics_path is None:
        return runner(settings)

    from pathlib import Path

    from repro.obs import NULL_TRACER, MetricsRegistry, Tracer, observe

    tracer = Tracer.to_file(trace_path) if trace_path else None
    metrics = MetricsRegistry() if metrics_path else None
    if metrics_path:
        # Fail fast on an unwritable path instead of after the whole run.
        Path(metrics_path).touch()
    try:
        # NULL_TRACER keeps tracing off when only --metrics-out was given.
        with observe(tracer=tracer if tracer is not None else NULL_TRACER,
                     metrics=metrics):
            result = runner(settings)
    finally:
        if tracer is not None:
            tracer.close()
            print(f"[wrote {trace_path} ({tracer.sink.lines_written} records)]")
        if metrics is not None and metrics_path:
            metrics.write_json(metrics_path)
            print(f"[wrote {metrics_path}]")
    return result


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, desc in list_experiments():
            print(f"{name:12} {desc}")
        return 0

    if args.command == "report":
        from pathlib import Path

        from repro.experiments.report_all import run_all

        settings = (
            ExperimentSettings.paper()
            if args.scale == "paper"
            else ExperimentSettings.quick()
        )
        full = run_all(settings, include=args.only)
        out = Path(args.output)
        out.write_text(full.to_markdown())
        print(f"wrote {out} ({len(full.sections)} experiments, "
              f"{full.total_seconds:.1f}s)")
        return 0

    settings = (
        ExperimentSettings.paper()
        if args.scale == "paper"
        else ExperimentSettings.quick()
    )
    overrides = {}
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.vs is not None:
        overrides["vs_per_node"] = args.vs
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.epsilon is not None:
        overrides["epsilon"] = args.epsilon
    if args.tree_degree is not None:
        overrides["tree_degree"] = args.tree_degree
    if args.workers is not None:
        overrides["workers"] = args.workers
    if overrides:
        settings = replace(settings, **overrides)

    if args.state_dir is not None:
        # One knob controls every journal/snapshot path: anything this
        # run constructs resolves its state directory through
        # repro.recovery.resolve_state_dir, which reads this variable.
        import os

        os.environ["REPRO_STATE_DIR"] = args.state_dir

    runner = get_experiment(args.experiment)

    fault_kwargs = {}
    if args.fault_drop is not None:
        fault_kwargs["drop_rates"] = tuple(args.fault_drop)
    if args.fault_crash is not None:
        fault_kwargs["crash_mid_round"] = args.fault_crash
    if args.fault_abort is not None:
        fault_kwargs["transfer_abort"] = args.fault_abort
    if args.fault_seed is not None:
        fault_kwargs["fault_seed"] = args.fault_seed
    if args.partition_components is not None:
        fault_kwargs["component_counts"] = tuple(args.partition_components)
    if args.partition_duration is not None:
        fault_kwargs["duration"] = args.partition_duration
    if args.fault_corrupt is not None:
        fault_kwargs["corrupt"] = args.fault_corrupt
    if fault_kwargs:
        import functools
        import inspect

        params = inspect.signature(runner).parameters
        unsupported = sorted(k for k in fault_kwargs if k not in params)
        if unsupported:
            print(
                f"error: {args.experiment} does not accept fault knobs "
                f"({', '.join(unsupported)}); --fault-*/--partition-* "
                "flags apply to the 'chaos' and 'partition' experiments",
                file=sys.stderr,
            )
            return 2
        runner = functools.partial(runner, **fault_kwargs)

    start = time.perf_counter()
    result = _run_observed(runner, settings, args.trace, args.metrics_out)
    elapsed = time.perf_counter() - start
    print(result.format_rows())
    if args.plot:
        rendered = _plot_result(args.experiment, result)
        if rendered:
            print()
            print(rendered)
    if args.export:
        for path in _export_result(args.experiment, result, args.export):
            print(f"[wrote {path}]")
    print(f"[{args.experiment} completed in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
