"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the simulator with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IdentifierSpaceError(ReproError):
    """An identifier or region is invalid for its identifier space."""


class RegionError(IdentifierSpaceError):
    """A region operation received inconsistent arguments."""


class DHTError(ReproError):
    """The DHT simulator was driven into an invalid state."""


class EmptyRingError(DHTError):
    """An operation required a non-empty Chord ring."""


class DuplicateIdError(DHTError):
    """Two virtual servers were assigned the same identifier."""


class TopologyError(ReproError):
    """Topology generation or querying failed."""


class ProximityError(ReproError):
    """Landmark/Hilbert proximity machinery received invalid input."""


class HilbertError(ProximityError):
    """Invalid parameters for the Hilbert space-filling curve."""


class TreeError(ReproError):
    """The K-nary tree was driven into an invalid state."""


class BalancerError(ReproError):
    """The load balancer was misconfigured or hit an invalid state."""


class ConfigError(BalancerError):
    """A configuration value is out of its documented range."""


class ConservationError(BalancerError):
    """A balancing step created or destroyed load instead of moving it."""


class FaultError(ReproError):
    """The fault-injection subsystem was misused or misconfigured."""


class FaultPlanError(FaultError):
    """A :class:`repro.faults.FaultPlan` knob is out of its valid range."""


class RetryExhaustedError(FaultError):
    """A bounded retry loop ran out of attempts or timeout budget."""


class AdversaryError(ReproError):
    """The Byzantine-adversary subsystem was misused or misconfigured."""


class AdversaryPlanError(AdversaryError):
    """An :class:`repro.adversary.AdversaryPlan` knob is out of range."""


class ProcessCrashError(FaultError):
    """An injected whole-process crash fired at a protocol site.

    Raised by the fault injector when a :class:`repro.faults.CrashPoint`
    fires; carries the crash site name and round index so the recovery
    layer can journal the event and disarm it after restoring.  This is
    the *simulated* analogue of the balancing process dying — nothing
    above :mod:`repro.recovery` should catch it.
    """

    def __init__(self, round_index: int, site: str) -> None:
        super().__init__(
            f"injected process crash at {site} in round {round_index}"
        )
        self.round_index = round_index
        self.site = site


class RecoveryError(ReproError):
    """The crash-recovery subsystem hit corrupt or divergent state.

    Covers journal corruption beyond the repairable torn tail, replay
    divergence (a restored run re-executed differently from the
    journaled prefix), and snapshot/restore mismatches.
    """


class SimulationError(ReproError):
    """The discrete-event simulation engine hit an invalid state."""


class WorkloadError(ReproError):
    """Workload generation received invalid parameters."""


class LintError(ReproError):
    """The static-analysis engine received invalid input or configuration."""
