"""Virtual-server splitting: taming unmovable giants.

The basic scheme can strand load: under heavy-tailed (Pareto) workloads
a single virtual server can carry more load than *any* light node's
spare capacity, and since the unit of movement is a whole virtual
server, it cannot move.  Rao et al. and the paper's future-work
discussion both point at splitting as the remedy.

Splitting a virtual server with identifier ``s`` owning ``(p, s]``
inserts a new virtual server on the *same physical node* at the
region's midpoint ``m``; the new VS owns ``(p, m]`` and the original
shrinks to ``(m, s]``.  Ownership of every identifier is preserved on
the same machine, so the operation is purely local (a self-join), after
which either half can transfer independently.

Load moves with the region: callers either provide an
:class:`~repro.dht.storage.ObjectStore` (exact object-level handoff via
``rehome``) or the load is split proportionally to region size.
"""

from __future__ import annotations

from repro.dht.chord import ChordRing
from repro.dht.storage import ObjectStore
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import DHTError


def split_virtual_server(
    ring: ChordRing,
    vs: VirtualServer | int,
    store: ObjectStore | None = None,
) -> VirtualServer:
    """Split ``vs`` at its region midpoint; returns the new virtual server.

    The new VS lands on the same physical node and takes the first half
    of the region.  Raises :class:`DHTError` when the region is a single
    identifier (nothing to split) or the midpoint identifier is already
    taken.
    """
    vs_obj = vs if isinstance(vs, VirtualServer) else ring.vs(int(vs))
    region = ring.region_of(vs_obj)
    if region.length < 2:
        raise DHTError(
            f"virtual server {vs_obj.vs_id} owns a single identifier; cannot split"
        )
    midpoint = region.center
    if midpoint == vs_obj.vs_id:
        # Length-2 region: the center rounds onto the VS itself; split at
        # the region's first identifier instead.
        midpoint = region.start
    old_load = vs_obj.load
    new_vs = ring.add_virtual_server(vs_obj.owner, midpoint)
    if store is not None:
        store.rehome()
    else:
        # Proportional load split by the sub-region sizes.
        new_region = ring.region_of(new_vs)
        share = old_load * (new_region.length / region.length)
        new_vs.load = share
        vs_obj.load = old_load - share
    return new_vs


def split_until_movable(
    ring: ChordRing,
    vs: VirtualServer | int,
    max_piece_load: float,
    store: ObjectStore | None = None,
    max_splits: int = 32,
) -> list[VirtualServer]:
    """Split ``vs`` repeatedly until every piece is at most ``max_piece_load``.

    Returns all resulting virtual servers (including the original).
    Splitting halves regions, not loads, so pieces are re-examined after
    each split; a piece whose region shrinks to one identifier stays as
    is (its load is irreducible at DHT granularity).
    """
    if max_piece_load <= 0:
        raise DHTError(f"max_piece_load must be positive, got {max_piece_load}")
    vs_obj = vs if isinstance(vs, VirtualServer) else ring.vs(int(vs))
    pieces = [vs_obj]
    splits = 0
    i = 0
    while i < len(pieces):
        piece = pieces[i]
        if piece.load <= max_piece_load:
            i += 1
            continue
        if splits >= max_splits or ring.region_of(piece).length < 2:
            i += 1
            continue
        new_vs = split_virtual_server(ring, piece, store)
        pieces.append(new_vs)
        splits += 1
        # re-examine the shrunken piece (do not advance i)
    return pieces
