"""Pastry-style prefix routing over the same virtual-server ring.

Section 4.3 of the paper: "Without loss of generality, we use Chord as
the example, but the techniques discussed here are applicable or easily
adapted to other DHTs such as Pastry and Tapestry."  This module
substantiates that claim.  The load balancer depends on the DHT only
for *ownership* (who is responsible for a key) — which both Chord and
Pastry resolve to essentially the same ring structure — while routing
differs: Chord walks fingers clockwise, Pastry corrects one digit of
the key per hop using prefix routing tables plus a leaf set.

We implement Pastry's routing semantics over the existing
:class:`~repro.dht.chord.ChordRing` population of virtual servers:

* identifiers are strings of ``2^b``-ary digits (default ``b = 4``,
  i.e. hexadecimal, Pastry's default);
* each virtual server's routing table row ``i`` holds, per digit value,
  some virtual server sharing an ``i``-digit prefix with it;
* the leaf set holds the ``L/2`` numerically closest virtual servers on
  each side;
* routing forwards to a node whose identifier shares a strictly longer
  prefix with the key, or failing that, to one numerically closer —
  Pastry's exact rule — and terminates at the numerically closest
  identifier.

Note the one semantic difference from Chord: Pastry assigns a key to
the *numerically closest* identifier rather than the clockwise
successor.  :func:`pastry_owner` exposes that rule; the routing tests
verify convergence to it in ``O(log_2^b N)`` hops.
"""

from __future__ import annotations

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import DHTError


class PastryRouter:
    """Prefix-routing state for every virtual server of a ring.

    Parameters
    ----------
    ring:
        The populated ring to route over.
    digit_bits:
        Pastry's ``b``: digits are ``2^b``-ary (default 4 = hex).
    leaf_set_size:
        Total leaf-set size ``L`` (half on each side).
    """

    def __init__(self, ring: ChordRing, digit_bits: int = 4, leaf_set_size: int = 8) -> None:
        if digit_bits < 1 or ring.space.bits % digit_bits != 0:
            raise DHTError(
                f"digit_bits={digit_bits} must divide the identifier width "
                f"({ring.space.bits})"
            )
        if leaf_set_size < 2 or leaf_set_size % 2 != 0:
            raise DHTError("leaf_set_size must be a positive even number")
        self.ring = ring
        self.digit_bits = digit_bits
        self.num_digits = ring.space.bits // digit_bits
        self.leaf_half = leaf_set_size // 2
        self._ids = np.asarray(
            [vs.vs_id for vs in ring.virtual_servers], dtype=np.int64
        )  # sorted (ring order)

    # ------------------------------------------------------------------
    # identifier helpers
    # ------------------------------------------------------------------
    def digits_of(self, ident: int) -> tuple[int, ...]:
        """Most-significant-first ``2^b``-ary digits of an identifier."""
        mask = (1 << self.digit_bits) - 1
        return tuple(
            (ident >> (self.digit_bits * (self.num_digits - 1 - i))) & mask
            for i in range(self.num_digits)
        )

    def shared_prefix_len(self, a: int, b: int) -> int:
        """Number of leading digits ``a`` and ``b`` share."""
        da, db = self.digits_of(a), self.digits_of(b)
        n = 0
        for x, y in zip(da, db):
            if x != y:
                break
            n += 1
        return n

    def numeric_distance(self, a: int, b: int) -> int:
        """Circular numeric distance used by Pastry's closeness rule."""
        return self.ring.space.distance(a, b)

    # ------------------------------------------------------------------
    # ownership and node state
    # ------------------------------------------------------------------
    def owner(self, key: int) -> VirtualServer:
        """The numerically closest virtual server to ``key`` (Pastry rule).

        Ties (exact midpoint) resolve clockwise, deterministically.
        """
        self.ring.space.validate(key)
        idx = int(np.searchsorted(self._ids, key))
        candidates: list[int] = []
        for j in (idx - 1, idx % len(self._ids)):
            vs_id = int(self._ids[j])  # j = -1 wraps to the largest id
            candidates.append(vs_id)
        best = min(
            candidates,
            key=lambda v: (self.numeric_distance(v, key), self.ring.space.distance_cw(key, v)),
        )
        return self.ring.vs(best)

    def leaf_set(self, vs: VirtualServer | int) -> list[int]:
        """The ``L`` numerically adjacent virtual-server ids around ``vs``."""
        vs_id = vs.vs_id if isinstance(vs, VirtualServer) else int(vs)
        idx = int(np.searchsorted(self._ids, vs_id))
        if idx >= len(self._ids) or self._ids[idx] != vs_id:
            raise DHTError(f"virtual server {vs_id} is not on the ring")
        n = len(self._ids)
        out: list[int] = []
        for off in range(-self.leaf_half, self.leaf_half + 1):
            if off == 0:
                continue
            out.append(int(self._ids[(idx + off) % n]))
        return out

    def routing_table_entry(self, vs_id: int, row: int, digit: int) -> int | None:
        """Some VS sharing ``row`` prefix digits with ``vs_id`` and having
        ``digit`` at position ``row`` (or ``None`` if no such VS exists).

        Computed from the sorted identifier array: the candidates form a
        contiguous identifier interval, so a binary search finds one in
        ``O(log n)`` — semantically the table Pastry maintains, derived
        on demand (like our Chord fingers).
        """
        if not 0 <= row < self.num_digits:
            raise DHTError(f"row {row} out of range")
        base = 1 << self.digit_bits
        if not 0 <= digit < base:
            raise DHTError(f"digit {digit} out of range")
        shift = self.digit_bits * (self.num_digits - 1 - row)
        prefix_mask_bits = self.digit_bits * row
        prefix = (
            (vs_id >> (self.ring.space.bits - prefix_mask_bits))
            << (self.ring.space.bits - prefix_mask_bits)
            if prefix_mask_bits
            else 0
        )
        lo = prefix | (digit << shift)
        hi = lo + (1 << shift)  # exclusive
        idx = int(np.searchsorted(self._ids, lo))
        if idx < len(self._ids) and self._ids[idx] < hi:
            return int(self._ids[idx])
        return None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, start: VirtualServer | int, key: int) -> list[int]:
        """Pastry route from ``start`` to the owner of ``key``.

        Returns the list of VS ids visited (first = start, last = owner).
        """
        self.ring.space.validate(key)
        start_vs = start if isinstance(start, VirtualServer) else self.ring.vs(int(start))
        target = self.owner(key)
        current = start_vs.vs_id
        path = [current]
        guard = 4 * self.num_digits + 8
        while current != target.vs_id:
            if len(path) > guard:
                raise DHTError("Pastry routing failed to converge")
            nxt = self._next_hop(current, key)
            if nxt is None or nxt == current:
                break
            path.append(nxt)
            current = nxt
        if current != target.vs_id:  # pragma: no cover - defensive
            raise DHTError("Pastry routing terminated away from the owner")
        return path

    def _next_hop(self, current: int, key: int) -> int | None:
        # 1. Leaf set covers the key: deliver directly to the owner.
        leaves = self.leaf_set(current) + [current]
        best_leaf = min(
            leaves,
            key=lambda v: (self.numeric_distance(v, key),
                           self.ring.space.distance_cw(key, v)),
        )
        owner_id = self.owner(key).vs_id
        if owner_id in leaves or owner_id == current:
            return owner_id if owner_id != current else None

        # 2. Routing table: a node sharing a strictly longer prefix.
        shared = self.shared_prefix_len(current, key)
        key_digit = self.digits_of(key)[shared]
        entry = self.routing_table_entry(current, shared, key_digit)
        if entry is not None and entry != current:
            return entry

        # 3. Rare case: anything (leaf) numerically closer than current.
        if self.numeric_distance(best_leaf, key) < self.numeric_distance(current, key):
            return best_leaf
        return None

    def route_hops(self, start: VirtualServer | int, key: int) -> int:
        return len(self.route(start, key)) - 1
