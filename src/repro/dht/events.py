"""Ring change log: the bridge from churn events to dirty regions.

:class:`RingEventLog` subscribes to a :class:`~repro.dht.chord.ChordRing`
(see :meth:`ChordRing.add_listener`) and records which virtual-server
identifiers joined or left since the last drain.  Recording is O(1) per
event — no ring queries happen at mutation time, because a burst of
churn would otherwise rebuild the ring index once per event.

The dirty *spans* are derived lazily at :meth:`drain` time, on the
final ring, by the **successor-pair rule**: for every logged event
identifier ``x``, the regions of ``successor(x)`` and
``successor(x + 1)`` on the post-churn ring jointly cover every piece
of identifier space whose ownership changed because of ``x``:

* a join at ``x`` carves the arc ending at ``x`` out of the old owner's
  region — the new virtual server *is* ``successor(x)`` and the shrunk
  old owner is ``successor(x + 1)``;
* a leave at ``x`` merges the departed region into the ring successor —
  the grown absorber is ``successor(x)`` (and ``successor(x + 1)``
  resolves to the same server), whose final region contains both the
  departed arc and the absorber's old arc.

Chained events compose: each event's rule covers the boundary it moved,
and the union over the round's events covers every old and new region
of every affected virtual server.  ``transfer`` events change hosting
but no region boundary, so they are ignored here (callers re-read
per-node load state each round anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dht.chord import ChordRing
from repro.exceptions import EmptyRingError
from repro.idspace import IntervalSet


@dataclass
class RingDelta:
    """What changed on the ring since the previous drain."""

    #: Identifiers at which a join or leave happened (possibly repeated).
    event_ids: list[int] = field(default_factory=list)
    #: A :meth:`ChordRing.populate` happened (or the ring emptied):
    #: subscribers must rebuild derived state from scratch.
    full_reset: bool = False
    #: Virtual servers whose region changed (deduplicated, drain-time).
    affected_vs_ids: list[int] = field(default_factory=list)
    #: Canonicalised dirty identifier spans, or ``None`` on full reset.
    dirty: IntervalSet | None = None

    @property
    def empty(self) -> bool:
        """Whether nothing structural changed since the last drain."""
        return not self.event_ids and not self.full_reset


class RingEventLog:
    """Accumulates ring membership events between balancing rounds."""

    __slots__ = ("ring", "_event_ids", "_removed_ids", "_full_reset")

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring
        self._event_ids: list[int] = []
        self._removed_ids: list[int] = []
        self._full_reset = False
        ring.add_listener(self._on_event)

    def _on_event(self, kind: str, vs_id: int) -> None:
        if kind == "add":
            self._event_ids.append(vs_id)
        elif kind == "remove":
            self._event_ids.append(vs_id)
            self._removed_ids.append(vs_id)
        elif kind == "bulk":
            self._full_reset = True
        # "transfer" changes hosting, not region boundaries: ignored.

    @property
    def pending_events(self) -> int:
        """Number of structural events logged since the last drain."""
        return len(self._event_ids)

    def drain(self, resolve: bool = True) -> RingDelta:
        """Consume the log and derive the dirty state on the final ring.

        With ``resolve=False`` only the raw events are returned (used
        when the caller has already decided to rebuild from scratch and
        the span derivation would be wasted work).  Resolution applies
        the successor-pair rule to every event id; if the ring has
        emptied in the meantime the delta degrades to a full reset.
        """
        delta = RingDelta(
            event_ids=self._event_ids, full_reset=self._full_reset
        )
        removed = self._removed_ids
        self._event_ids = []
        self._removed_ids = []
        self._full_reset = False
        if delta.full_reset or not delta.event_ids or not resolve:
            return delta
        ring = self.ring
        size = ring.space.size
        probes = np.asarray(delta.event_ids, dtype=np.int64)
        probes = np.unique(
            np.concatenate([probes % size, (probes + 1) % size])
        )
        try:
            successors = ring.successors(probes)
        except EmptyRingError:
            delta.full_reset = True
            return delta
        seen: set[int] = set()
        regions = []
        for vs in successors:
            if vs.vs_id not in seen:
                seen.add(vs.vs_id)
                regions.append(ring.region_of(vs))
        delta.affected_vs_ids = sorted(seen.union(removed))
        delta.dirty = IntervalSet.from_regions(ring.space, regions)
        return delta
