"""Successor-list replication: the crash-tolerance substrate.

The paper's self-repair story relies on the DHT re-materialising state
after crashes ("the responsible regions of the virtual servers of the
crashing DHT node will be taken over by other virtual servers after
repair").  This module supplies the mechanism a real Chord deployment
uses: each virtual server replicates its objects onto its ``r`` ring
successors, so when a node crashes the new owner of each region already
holds the data.

The replica map is *soft state*: :meth:`ReplicationManager.refresh`
recomputes it from the current ring, and
:meth:`ReplicationManager.available_after_crash` answers whether a
region's objects survived a given crash set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dht.chord import ChordRing
from repro.dht.storage import ObjectStore
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import DHTError


@dataclass(frozen=True, slots=True)
class ReplicaSet:
    """The nodes holding copies of one virtual server's objects."""

    vs_id: int
    primary_node: int
    replica_nodes: tuple[int, ...]

    @property
    def all_holders(self) -> tuple[int, ...]:
        return (self.primary_node, *self.replica_nodes)


class ReplicationManager:
    """Maintains successor-list replica placement for every virtual server.

    Parameters
    ----------
    ring:
        The Chord ring.
    replication_factor:
        Number of *distinct physical nodes* (beyond the primary) that
        hold each region's objects.  Chord's successor-list rule: walk
        the ring clockwise collecting virtual servers until ``r``
        distinct other nodes are found.
    """

    def __init__(self, ring: ChordRing, replication_factor: int = 2) -> None:
        if replication_factor < 0:
            raise DHTError("replication_factor must be >= 0")
        self.ring = ring
        self.replication_factor = replication_factor
        self._replicas: dict[int, ReplicaSet] = {}
        self.refresh()

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Recompute replica placement from the current ring (soft state)."""
        self._replicas.clear()
        vss = self.ring.virtual_servers
        n = len(vss)
        for i, vs in enumerate(vss):
            holders: list[int] = []
            j = (i + 1) % n
            while len(holders) < self.replication_factor and j != i:
                owner_idx = vss[j].owner.index
                if owner_idx != vs.owner.index and owner_idx not in holders:
                    holders.append(owner_idx)
                j = (j + 1) % n
            self._replicas[vs.vs_id] = ReplicaSet(
                vs_id=vs.vs_id,
                primary_node=vs.owner.index,
                replica_nodes=tuple(holders),
            )

    def replica_set(self, vs: VirtualServer | int) -> ReplicaSet:
        vs_id = vs.vs_id if isinstance(vs, VirtualServer) else int(vs)
        try:
            return self._replicas[vs_id]
        except KeyError:
            raise DHTError(f"no replica set for virtual server {vs_id}") from None

    # ------------------------------------------------------------------
    def available_after_crash(self, crashed_nodes: set[int]) -> dict[int, bool]:
        """Which regions' objects survive if ``crashed_nodes`` all fail at once.

        A region survives when at least one holder (primary or replica)
        is outside the crash set.  With ``r`` replicas on distinct nodes
        any crash of at most ``r`` nodes loses nothing — the guarantee
        the tests assert.
        """
        return {
            vs_id: any(h not in crashed_nodes for h in rs.all_holders)
            for vs_id, rs in self._replicas.items()
        }

    def survives_any_crash_of(self, k: int) -> bool:
        """Whether every region tolerates *any* simultaneous k-node crash.

        True iff every replica set spans more than ``k`` distinct nodes.
        """
        return all(
            len(set(rs.all_holders)) > k for rs in self._replicas.values()
        )

    def storage_blowup(self, store: ObjectStore) -> float:
        """Total replicated bytes divided by primary bytes (cost of ``r``)."""
        primary = 0.0
        replicated = 0.0
        for vs in self.ring.virtual_servers:
            size = store.transfer_bytes(vs)
            primary += size
            replicated += size * (1 + len(self._replicas[vs.vs_id].replica_nodes))
        if primary == 0:
            return 1.0
        return replicated / primary
