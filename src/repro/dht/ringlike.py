"""The structural ring interface the balancing protocol consumes.

:class:`RingLike` is a :class:`typing.Protocol` capturing exactly the
slice of :class:`~repro.dht.chord.ChordRing` that the K-nary tree and
the LBI/VSA/VST phases touch.  Both the real ring and a partition
component's :class:`~repro.membership.views.ComponentRingView` satisfy
it structurally, which is what lets a degraded per-component round run
the *identical* protocol code paths as a whole-ring round — the
partition is a property of the view, never of the algorithms.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.dht.node import PhysicalNode
from repro.dht.virtual_server import VirtualServer
from repro.idspace import IdentifierSpace, Region


@runtime_checkable
class RingLike(Protocol):
    """What a ring must offer for the protocol phases to run over it."""

    @property
    def space(self) -> IdentifierSpace:
        """The identifier space the ring lives in."""
        ...

    @property
    def nodes(self) -> list[PhysicalNode]:
        """All physical nodes in the view, in stable order."""
        ...

    @property
    def alive_nodes(self) -> list[PhysicalNode]:
        """The nodes still participating."""
        ...

    @property
    def virtual_servers(self) -> list[VirtualServer]:
        """The hosted virtual servers, in ring order."""
        ...

    @property
    def num_virtual_servers(self) -> int:
        """Count of hosted virtual servers."""
        ...

    def vs(self, vs_id: int) -> VirtualServer:
        """The virtual server with exactly ``vs_id`` (or DHTError)."""
        ...

    def successor(self, key: int) -> VirtualServer:
        """The virtual server owning ``key`` (clockwise, wrapping)."""
        ...

    def predecessor_id(self, vs_id: int) -> int:
        """Identifier of the virtual server preceding ``vs_id``."""
        ...

    def host_with_region(self, key: int) -> tuple[VirtualServer, int, int]:
        """``successor(key)`` plus its owned arc as raw ``(start, length)``.

        Must agree exactly with ``successor`` + ``region_of`` (including
        the single-VS full-ring convention); rings back it with one index
        probe, which is why the K-nary tree prefers it on its hot path.
        """
        ...

    def region_of(self, vs: VirtualServer | int) -> Region:
        """The arc of the identifier space owned by ``vs``."""
        ...

    def remove_virtual_server(self, vs: VirtualServer | int) -> VirtualServer:
        """Deregister a virtual server (crash/leave churn)."""
        ...
