"""Chord finger-table routing (hop-count simulation).

The load balancer itself only needs ownership queries, but a faithful
Chord substrate must route: publishing VSA information under a Hilbert
key is a DHT ``put``, which costs ``O(log n)`` overlay hops.  This module
implements Chord's greedy clockwise finger routing over virtual servers
and returns the hop path, so experiments can account for publication
overhead.

Fingers are computed on demand from the ring's sorted identifier index
(finger ``i`` of a VS with id ``s`` is ``successor(s + 2^i)``), which is
equivalent to maintaining materialised finger tables on a stable ring and
stays consistent under churn for free.
"""

from __future__ import annotations

from repro.dht.chord import ChordRing
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import DHTError


def lookup_path(ring: ChordRing, start: VirtualServer | int, key: int) -> list[int]:
    """Route from ``start`` to the owner of ``key``; return VS ids visited.

    The first element is the starting VS id and the last is the owner of
    ``key``.  Routing follows Chord's rule: forward to the finger that is
    the closest *preceding* VS of the key, then take the final successor
    step.
    """
    ring.space.validate(key)
    start_vs = start if isinstance(start, VirtualServer) else ring.vs(int(start))
    owner = ring.successor(key)
    path = [start_vs.vs_id]
    current = start_vs
    size = ring.space.size
    max_steps = 4 * ring.space.bits + 4  # generous routing-loop guard
    while current is not owner:
        if len(path) > max_steps:
            raise DHTError("routing loop detected in Chord lookup")
        nxt = _closest_preceding_finger(ring, current, key)
        if nxt is current:
            # No finger strictly between us and the key: the successor
            # step completes the lookup.
            nxt = ring.successor(ring.space.wrap(current.vs_id + 1))
        path.append(nxt.vs_id)
        current = nxt
        # Termination: each hop at least halves the clockwise distance or
        # is the final successor hop.
        if current is owner:
            break
        if ring.space.distance_cw(current.vs_id, key) >= size:  # pragma: no cover
            raise DHTError("lookup failed to make progress")
    return path


def _closest_preceding_finger(
    ring: ChordRing, current: VirtualServer, key: int
) -> VirtualServer:
    """Best finger of ``current`` strictly inside ``(current, key)``.

    Scans finger targets from the largest span downwards, mirroring
    Chord's ``closest_preceding_node``.
    """
    space = ring.space
    gap = space.distance_cw(current.vs_id, key)
    for i in range(space.bits - 1, -1, -1):
        span = 1 << i
        if span >= gap:
            continue
        finger = ring.successor(space.wrap(current.vs_id + span))
        d = space.distance_cw(current.vs_id, finger.vs_id)
        if 0 < d < gap:
            return finger
    return current


def lookup_hops(ring: ChordRing, start: VirtualServer | int, key: int) -> int:
    """Number of overlay hops to resolve ``key`` from ``start``."""
    return len(lookup_path(ring, start, key)) - 1


def finger_targets(ring: ChordRing, vs: VirtualServer | int) -> list[int]:
    """The ``bits`` finger entries of ``vs`` (successor of ``id + 2^i``)."""
    vs_obj = vs if isinstance(vs, VirtualServer) else ring.vs(int(vs))
    space = ring.space
    return [
        ring.successor(space.wrap(vs_obj.vs_id + (1 << i))).vs_id
        for i in range(space.bits)
    ]
