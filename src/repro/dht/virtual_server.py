"""Virtual servers: the unit of identifier-space ownership and load movement.

A virtual server (Section 2 of the paper) "looks like a single DHT node,
responsible for a contiguous region of the DHT's identifier space".  A
physical node owns multiple, generally non-contiguous regions by hosting
several virtual servers.  Moving a virtual server between physical nodes
is the paper's unit of load transfer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dht.node import PhysicalNode


class VirtualServer:
    """One virtual server on the Chord ring.

    Attributes
    ----------
    vs_id:
        Ring identifier of this virtual server.  The VS owns the arc
        ``(predecessor_id, vs_id]``; the arc itself is derived by the ring
        (see :meth:`repro.dht.chord.ChordRing.region_of`) because it
        changes whenever neighbours join or leave.
    owner:
        The physical node currently hosting this virtual server.  Mutated
        by virtual-server transfers.
    load:
        Current load carried by the VS.  The paper treats load as an
        abstract stable quantity (storage, bandwidth or CPU); workload
        generators assign it.
    """

    __slots__ = ("vs_id", "owner", "load")

    def __init__(self, vs_id: int, owner: "PhysicalNode", load: float = 0.0) -> None:
        if load < 0:
            raise ValueError(f"virtual server load must be non-negative, got {load}")
        self.vs_id = vs_id
        self.owner = owner
        self.load = float(load)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VirtualServer(id={self.vs_id}, owner={self.owner.index}, "
            f"load={self.load:.3g})"
        )
