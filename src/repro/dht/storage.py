"""Object-level storage on top of the virtual-server abstraction.

The paper treats "load" abstractly but motivates the Gaussian model by
"a large number of small objects ... the individual loads on these
objects are independent".  This module provides that concrete substrate:
named objects with individual loads are ``put`` into the DHT, land on
the virtual server owning their key, and the virtual server's load is
the sum of its objects' loads.

It also gives virtual-server transfers their physical meaning: moving a
VS moves its objects, and the transfer *bytes* are the sum of object
sizes — the quantity the proximity-aware scheme is minimising the
network distance for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import DHTError
from repro.idspace.hashing import hash_to_id
from repro.util.rng import ensure_rng


@dataclass(frozen=True, slots=True)
class StoredObject:
    """One object stored in the DHT."""

    key: int
    name: str
    load: float
    size: float  # bytes moved when the hosting VS transfers

    def __post_init__(self) -> None:
        if self.load < 0 or self.size < 0:
            raise DHTError(f"object load/size must be non-negative: {self!r}")


class ObjectStore:
    """Object placement and per-virtual-server load accounting.

    The store is an overlay over a :class:`ChordRing`: objects map to the
    virtual server owning their key.  Virtual-server ``load`` fields are
    kept in sync with the objects they host, so the load balancer runs
    unchanged on top of object-level workloads.

    Ring structure changes (VS joins/leaves) change ownership; call
    :meth:`rehome` afterwards to re-sync placement (in a real DHT this is
    the object handoff the join/leave protocol performs).
    """

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring
        # Objects are indexed by name; several names may hash to the same
        # key (they simply co-locate on the key's owner).
        self._objects: dict[str, StoredObject] = {}
        self._by_vs: dict[int, set[str]] = {}  # vs_id -> object names

    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self._objects)

    @property
    def total_load(self) -> float:
        return sum(o.load for o in self._objects.values())

    def objects_on(self, vs: VirtualServer | int) -> list[StoredObject]:
        vs_id = vs.vs_id if isinstance(vs, VirtualServer) else int(vs)
        return [self._objects[n] for n in sorted(self._by_vs.get(vs_id, ()))]

    def owner_of(self, obj: StoredObject) -> VirtualServer:
        return self.ring.successor(obj.key)

    # ------------------------------------------------------------------
    def put(self, name: str, load: float, size: float = 1.0) -> StoredObject:
        """Insert an object under ``hash(name)``; returns the stored record.

        Re-putting an existing name replaces the object (load accounting
        adjusts accordingly).
        """
        key = hash_to_id(name, self.ring.space)
        obj = StoredObject(key=key, name=name, load=float(load), size=float(size))
        vs = self.ring.successor(key)
        old = self._objects.get(name)
        if old is not None:
            vs.load -= old.load
        self._objects[name] = obj
        self._by_vs.setdefault(vs.vs_id, set()).add(name)
        vs.load += obj.load
        return obj

    def get(self, name: str) -> StoredObject:
        """Look up an object by name; raises :class:`DHTError` if absent."""
        try:
            return self._objects[name]
        except KeyError:
            raise DHTError(f"no object named {name!r}") from None

    def delete(self, name: str) -> StoredObject:
        """Remove an object, adjusting its host's load."""
        obj = self.get(name)
        vs = self.ring.successor(obj.key)
        del self._objects[name]
        self._by_vs.get(vs.vs_id, set()).discard(name)
        vs.load -= obj.load
        return obj

    def add_load(self, name: str, delta: float) -> StoredObject:
        """Accrue demand-driven load onto an object (e.g. query service).

        Keeping the load on the *object* (rather than directly on the
        virtual server) means it survives re-homing and moves with the
        object during virtual-server transfers.
        """
        obj = self.get(name)
        new_load = obj.load + delta
        if new_load < 0:
            raise DHTError(
                f"object {name!r} load would become negative ({new_load})"
            )
        updated = StoredObject(
            key=obj.key, name=name, load=new_load, size=obj.size
        )
        self._objects[name] = updated
        self.ring.successor(obj.key).load += delta
        return updated

    # ------------------------------------------------------------------
    def populate(
        self,
        num_objects: int,
        mean_load: float,
        rng: int | None | np.random.Generator = None,
        popularity: str = "uniform",
        zipf_s: float = 1.2,
        name_prefix: str = "obj",
    ) -> list[StoredObject]:
        """Insert ``num_objects`` synthetic objects.

        ``popularity="uniform"`` draws i.i.d. exponential loads with the
        given mean (many small independent objects — the paper's Gaussian
        justification); ``"zipf"`` draws loads proportional to a Zipf
        rank distribution with exponent ``zipf_s`` (hotspot workloads).
        Object size is set equal to load (bytes proportional to work).
        """
        if num_objects < 0:
            raise DHTError(f"cannot create {num_objects} objects")
        gen = ensure_rng(rng)
        if popularity == "uniform":
            loads = gen.exponential(mean_load, size=num_objects)
        elif popularity == "zipf":
            ranks = np.arange(1, num_objects + 1, dtype=np.float64)
            weights = ranks ** (-zipf_s)
            loads = mean_load * num_objects * weights / weights.sum()
            gen.shuffle(loads)
        else:
            raise DHTError(f"unknown popularity model {popularity!r}")
        return [
            self.put(f"{name_prefix}-{i}", float(loads[i]), size=float(loads[i]))
            for i in range(num_objects)
        ]

    # ------------------------------------------------------------------
    def rehome(self) -> int:
        """Re-sync object placement after ring-structure changes.

        Returns the number of objects that changed hosting virtual
        server.  Loads of all virtual servers are recomputed from their
        objects, so any stale handover approximations (e.g. the
        proportional split performed by :func:`repro.dht.churn.join_node`)
        are replaced by exact object-level accounting.
        """
        moved = 0
        new_by_vs: dict[int, set[str]] = {}
        for name, obj in self._objects.items():
            vs = self.ring.successor(obj.key)
            new_by_vs.setdefault(vs.vs_id, set()).add(name)
        for vs in self.ring.virtual_servers:
            old = self._by_vs.get(vs.vs_id, set())
            new = new_by_vs.get(vs.vs_id, set())
            moved += len(new - old)
            # Sum in sorted-name order: float addition is order-sensitive,
            # and set order varies with insertion history.
            vs.load = sum(self._objects[n].load for n in sorted(new))
        self._by_vs = new_by_vs
        return moved

    def check_consistency(self) -> None:
        """Verify placement and load accounting; raises on drift."""
        for vs in self.ring.virtual_servers:
            expected = sum(
                self._objects[n].load
                for n in sorted(self._by_vs.get(vs.vs_id, ()))
            )
            if abs(vs.load - expected) > 1e-6 * max(1.0, expected):
                raise DHTError(
                    f"vs {vs.vs_id} load {vs.load} != object sum {expected}"
                )
            region = self.ring.region_of(vs)
            for n in sorted(self._by_vs.get(vs.vs_id, ())):
                if not region.contains(self._objects[n].key):
                    raise DHTError(
                        f"object {n!r} stored on vs {vs.vs_id} outside its region"
                    )

    def transfer_bytes(self, vs: VirtualServer | int) -> float:
        """Bytes that moving ``vs`` would put on the wire (object sizes)."""
        vs_id = vs.vs_id if isinstance(vs, VirtualServer) else int(vs)
        return sum(
            self._objects[n].size for n in sorted(self._by_vs.get(vs_id, ()))
        )
