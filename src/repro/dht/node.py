"""Physical DHT nodes with heterogeneous capacities.

A physical node hosts several virtual servers and is attached to one
vertex ("site") of the underlying Internet topology; transfer costs and
landmark distances are measured between sites.
"""

from __future__ import annotations

from typing import Iterable

from repro.dht.virtual_server import VirtualServer
from repro.exceptions import DHTError


class PhysicalNode:
    """A physical peer in the P2P system.

    Attributes
    ----------
    index:
        Dense integer identity of the node within its ring (also used as
        the simulated IP address in VSA records).
    capacity:
        The node's capacity ``C_i`` (bandwidth/storage/CPU abstraction).
        The Gnutella-like profile of the paper assigns values from
        ``{1, 10, 1e2, 1e3, 1e4}``.
    site:
        Vertex of the underlying topology graph this peer sits on, or
        ``None`` when no topology is attached (pure identifier-space
        experiments such as figures 4-6).
    virtual_servers:
        The virtual servers currently hosted.  Maintained by the ring and
        by transfer operations; do not mutate directly.
    """

    __slots__ = ("index", "capacity", "site", "virtual_servers", "alive")

    def __init__(
        self,
        index: int,
        capacity: float,
        site: int | None = None,
        virtual_servers: Iterable[VirtualServer] | None = None,
    ) -> None:
        if capacity <= 0:
            raise DHTError(f"node capacity must be positive, got {capacity}")
        self.index = int(index)
        self.capacity = float(capacity)
        self.site = site
        self.virtual_servers: list[VirtualServer] = list(virtual_servers or ())
        self.alive = True

    # ------------------------------------------------------------------
    @property
    def load(self) -> float:
        """Total load ``L_i``: sum over hosted virtual servers."""
        return sum(vs.load for vs in self.virtual_servers)

    @property
    def min_vs_load(self) -> float:
        """Minimum virtual-server load ``L_{i,min}`` on this node.

        Part of the LBI triple ``<L_i, C_i, L_{i,min}>``; undefined
        (raises) when the node hosts no virtual servers.
        """
        if not self.virtual_servers:
            raise DHTError(f"node {self.index} hosts no virtual servers")
        return min(vs.load for vs in self.virtual_servers)

    @property
    def unit_load(self) -> float:
        """Load per unit capacity ``L_i / C_i`` — the y-axis of figure 4."""
        return self.load / self.capacity

    def host(self, vs: VirtualServer) -> None:
        """Attach a virtual server to this node (bookkeeping helper)."""
        if vs.owner is not self and vs in self.virtual_servers:
            raise DHTError("virtual server already hosted with stale owner")
        vs.owner = self
        if vs not in self.virtual_servers:
            self.virtual_servers.append(vs)

    def unhost(self, vs: VirtualServer) -> None:
        """Detach a virtual server from this node."""
        try:
            self.virtual_servers.remove(vs)
        except ValueError:
            raise DHTError(
                f"virtual server {vs.vs_id} is not hosted by node {self.index}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhysicalNode(index={self.index}, capacity={self.capacity:g}, "
            f"vs={len(self.virtual_servers)}, load={self.load:.3g})"
        )
