"""The Chord ring: consistent hashing over virtual servers.

The ring maps every identifier to the virtual server that *succeeds* it
clockwise: the VS with identifier ``s`` owns the half-open arc
``(predecessor(s), s]``.  The ring is the single source of truth for
region ownership; virtual servers and nodes only hold their own state.

Implementation notes
--------------------
Ownership queries are answered with a sorted NumPy identifier array and
``searchsorted`` (``O(log n)`` per query, vectorised for bulk queries).
Mutations (joins, leaves, transfers) mark the index dirty; it is rebuilt
lazily on the next query, so bursts of churn cost one rebuild.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.dht.node import PhysicalNode
from repro.dht.virtual_server import VirtualServer
from repro.exceptions import DHTError, DuplicateIdError, EmptyRingError
from repro.idspace import IdentifierSpace, Region
from repro.util.rng import ensure_rng


class ChordRing:
    """A Chord identifier ring populated by virtual servers.

    Parameters
    ----------
    space:
        Identifier space of the ring (32-bit in the paper's experiments).

    Examples
    --------
    >>> ring = ChordRing(IdentifierSpace(bits=8))
    >>> nodes = ring.populate(num_nodes=4, vs_per_node=2, capacities=[1, 1, 1, 1], rng=0)
    >>> len(ring.virtual_servers)
    8
    """

    def __init__(self, space: IdentifierSpace | None = None) -> None:
        self.space = space if space is not None else IdentifierSpace()
        self.nodes: list[PhysicalNode] = []
        self._vs_by_id: dict[int, VirtualServer] = {}
        self._sorted_ids: np.ndarray | None = None
        self._sorted_vs: list[VirtualServer] | None = None
        self._listeners: list[Callable[[str, int], None]] = []

    # ------------------------------------------------------------------
    # Change notification
    # ------------------------------------------------------------------
    def add_listener(self, callback: Callable[[str, int], None]) -> None:
        """Subscribe ``callback(kind, vs_id)`` to ring membership changes.

        ``kind`` is ``"add"``, ``"remove"``, ``"transfer"`` (re-hosting
        only; the region map is unchanged) or ``"bulk"`` (a
        :meth:`populate` call; ``vs_id`` is ``-1`` and subscribers
        should re-derive their state from scratch).  Listeners observe
        every mutation that goes through the ring's API; they are how
        the incremental balancer keeps its dirty-region log without the
        ring knowing anything about trees or caches.
        """
        self._listeners.append(callback)

    def _notify(self, kind: str, vs_id: int) -> None:
        for callback in self._listeners:
            callback(kind, vs_id)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def populate(
        self,
        num_nodes: int,
        vs_per_node: int | Sequence[int],
        capacities: Sequence[float],
        rng: int | None | np.random.Generator = None,
        sites: Sequence[int] | None = None,
    ) -> list[PhysicalNode]:
        """Create ``num_nodes`` physical nodes with random virtual servers.

        Virtual-server identifiers are drawn uniformly at random from the
        identifier space (Chord's random placement); duplicates are
        redrawn.  ``capacities[i]`` becomes node ``i``'s capacity and
        ``sites[i]`` (optional) its topology vertex.  ``vs_per_node`` is
        either one count for every node or a per-node sequence (e.g. the
        CFS-style capacity-proportional allocation).
        """
        if num_nodes < 1:
            raise DHTError(f"num_nodes must be >= 1, got {num_nodes}")
        if isinstance(vs_per_node, int):
            counts = [vs_per_node] * num_nodes
        else:
            counts = [int(c) for c in vs_per_node]
            if len(counts) != num_nodes:
                raise DHTError(
                    f"vs_per_node has length {len(counts)}, expected {num_nodes}"
                )
        if any(c < 1 for c in counts):
            raise DHTError("every node needs at least one virtual server")
        if len(capacities) != num_nodes:
            raise DHTError(
                f"capacities has length {len(capacities)}, expected {num_nodes}"
            )
        if sites is not None and len(sites) != num_nodes:
            raise DHTError(f"sites has length {len(sites)}, expected {num_nodes}")
        total_vs = sum(counts)
        if total_vs > self.space.size:
            raise DHTError(
                f"cannot place {total_vs} virtual servers on a ring of size {self.space.size}"
            )
        gen = ensure_rng(rng)
        ids = self._draw_unique_ids(total_vs, gen)
        created: list[PhysicalNode] = []
        base_index = len(self.nodes)
        cursor = 0
        for i in range(num_nodes):
            node = PhysicalNode(
                index=base_index + i,
                capacity=capacities[i],
                site=None if sites is None else int(sites[i]),
            )
            for _ in range(counts[i]):
                vs = VirtualServer(int(ids[cursor]), node)
                cursor += 1
                node.virtual_servers.append(vs)
                self._vs_by_id[vs.vs_id] = vs
            self.nodes.append(node)
            created.append(node)
        self._invalidate()
        if self._listeners:
            self._notify("bulk", -1)
        return created

    def _draw_unique_ids(self, count: int, gen: np.random.Generator) -> np.ndarray:
        """Draw ``count`` ring identifiers not colliding with existing ones."""
        taken = set(self._vs_by_id)
        out: list[int] = []
        # Rejection sampling; collisions are vanishingly rare on a 32-bit
        # ring, but tiny test rings need the loop.
        attempts = 0
        while len(out) < count:
            need = count - len(out)
            draw = gen.integers(0, self.space.size, size=max(need * 2, 16))
            for v in draw.tolist():
                if v not in taken:
                    taken.add(v)
                    out.append(v)
                    if len(out) == count:
                        break
            attempts += 1
            if attempts > 1000:
                raise DHTError("identifier space too crowded to draw unique ids")
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._sorted_ids = None
        self._sorted_vs = None

    def _index_insert(self, vs: VirtualServer) -> None:
        """Patch a built index in place for one join.

        Inserting at the ``searchsorted`` position keeps ``_sorted_ids``
        exactly what a full rebuild would produce (identifiers are
        unique), at O(n) memmove instead of O(n log n) re-sort — the
        difference between minutes and seconds for churn bursts on
        ~10^6-VS rings.  A not-yet-built index stays lazy.
        """
        if self._sorted_ids is None:
            return
        assert self._sorted_vs is not None
        idx = int(np.searchsorted(self._sorted_ids, vs.vs_id, side="left"))
        self._sorted_ids = np.insert(self._sorted_ids, idx, vs.vs_id)
        self._sorted_vs.insert(idx, vs)

    def _index_remove(self, vs_id: int) -> None:
        """Patch a built index in place for one leave (see _index_insert)."""
        if self._sorted_ids is None:
            return
        assert self._sorted_vs is not None
        idx = int(np.searchsorted(self._sorted_ids, vs_id, side="left"))
        self._sorted_ids = np.delete(self._sorted_ids, idx)
        del self._sorted_vs[idx]

    def _ensure_index(self) -> None:
        if self._sorted_ids is not None:
            return
        if not self._vs_by_id:
            raise EmptyRingError("the Chord ring has no virtual servers")
        ids = np.fromiter(self._vs_by_id.keys(), dtype=np.int64, count=len(self._vs_by_id))
        order = np.argsort(ids)
        self._sorted_ids = ids[order]
        self._sorted_vs = [self._vs_by_id[int(i)] for i in self._sorted_ids]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def virtual_servers(self) -> list[VirtualServer]:
        """All virtual servers in ring (clockwise identifier) order."""
        self._ensure_index()
        assert self._sorted_vs is not None
        return list(self._sorted_vs)

    @property
    def num_virtual_servers(self) -> int:
        return len(self._vs_by_id)

    @property
    def alive_nodes(self) -> list[PhysicalNode]:
        """Physical nodes still participating in the ring."""
        return [n for n in self.nodes if n.alive]

    def vs(self, vs_id: int) -> VirtualServer:
        """Virtual server with exactly identifier ``vs_id``."""
        try:
            return self._vs_by_id[vs_id]
        except KeyError:
            raise DHTError(f"no virtual server with id {vs_id}") from None

    def successor(self, key: int) -> VirtualServer:
        """The virtual server owning ``key`` (first VS id >= key, wrapping)."""
        self.space.validate(key)
        self._ensure_index()
        assert self._sorted_ids is not None and self._sorted_vs is not None
        idx = int(np.searchsorted(self._sorted_ids, key, side="left"))
        if idx == len(self._sorted_ids):
            idx = 0
        return self._sorted_vs[idx]

    def host_with_region(self, key: int) -> tuple[VirtualServer, int, int]:
        """:meth:`successor` plus its owned region as raw ``(start, length)``.

        One ``searchsorted`` yields both the owning virtual server and
        its predecessor, so callers that need the owner *and* its region
        (the K-nary tree plants a node and immediately tests coverage)
        pay a single index probe instead of two.  The arithmetic mirrors
        :meth:`successor` followed by :meth:`region_of` exactly,
        including the full-ring convention for a single-VS ring.
        """
        self.space.validate(key)
        self._ensure_index()
        assert self._sorted_ids is not None and self._sorted_vs is not None
        ids = self._sorted_ids
        idx = int(np.searchsorted(ids, key, side="left"))
        if idx == len(ids):
            idx = 0
        vs = self._sorted_vs[idx]
        if len(ids) == 1:
            return vs, 0, self.space.size
        pred = int(ids[idx - 1])  # idx-1 == -1 wraps correctly
        size = self.space.size
        return vs, (pred + 1) % size, (vs.vs_id - pred) % size

    def successors(self, keys: np.ndarray) -> list[VirtualServer]:
        """Vectorised :meth:`successor` for an array of keys."""
        self._ensure_index()
        assert self._sorted_ids is not None and self._sorted_vs is not None
        idxs = np.searchsorted(self._sorted_ids, np.asarray(keys, dtype=np.int64), side="left")
        idxs[idxs == len(self._sorted_ids)] = 0
        return [self._sorted_vs[int(i)] for i in idxs]

    def predecessor_id(self, vs_id: int) -> int:
        """Identifier of the VS immediately preceding ``vs_id`` on the ring."""
        self._ensure_index()
        assert self._sorted_ids is not None
        idx = int(np.searchsorted(self._sorted_ids, vs_id, side="left"))
        if idx >= len(self._sorted_ids) or self._sorted_ids[idx] != vs_id:
            raise DHTError(f"no virtual server with id {vs_id}")
        return int(self._sorted_ids[idx - 1])  # idx-1 == -1 wraps correctly

    def region_of(self, vs: VirtualServer | int) -> Region:
        """The region ``(predecessor, vs_id]`` currently owned by ``vs``.

        With a single VS on the ring the region is the full ring.
        """
        vs_id = vs.vs_id if isinstance(vs, VirtualServer) else int(vs)
        if len(self._vs_by_id) == 1:
            if vs_id not in self._vs_by_id:
                raise DHTError(f"no virtual server with id {vs_id}")
            return Region.full(self.space)
        pred = self.predecessor_id(vs_id)
        start = self.space.wrap(pred + 1)
        length = self.space.distance_cw(pred, vs_id)
        return Region(self.space, start, length)

    def hosts_with_regions(
        self, keys: np.ndarray
    ) -> tuple[list[VirtualServer], np.ndarray, np.ndarray]:
        """Vectorised :meth:`host_with_region` for an array of keys.

        Returns the owning virtual servers plus their owned arcs as raw
        ``(starts, lengths)`` int64 columns.  One ``searchsorted`` over
        the sorted-id index serves the whole batch; the arithmetic —
        including the full-ring convention for a single-VS ring —
        mirrors the scalar method exactly.  This is what lets the
        K-nary tree's batched descent materialise a whole tree level's
        new children without per-node index probes.
        """
        arr = np.asarray(keys, dtype=np.int64)
        size = self.space.size
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= size):
            bad = arr[(arr < 0) | (arr >= size)]
            self.space.validate(int(bad[0]))
        self._ensure_index()
        assert self._sorted_ids is not None and self._sorted_vs is not None
        ids = self._sorted_ids
        idx = np.searchsorted(ids, arr, side="left")
        idx[idx == len(ids)] = 0
        hosts = [self._sorted_vs[i] for i in idx.tolist()]
        if len(ids) == 1:
            return (
                hosts,
                np.zeros(arr.size, dtype=np.int64),
                np.full(arr.size, size, dtype=np.int64),
            )
        pred = ids[idx - 1]  # idx-1 == -1 wraps correctly
        lengths = (ids[idx] - pred) % size
        starts = (pred + 1) % size
        return hosts, starts, lengths

    def centers_of(self, vs_ids: np.ndarray) -> np.ndarray:
        """Vectorized ``region_of(vs).center`` for registered identifiers.

        One ``searchsorted`` over the sorted-id index replaces a
        per-identifier predecessor lookup; the arithmetic mirrors
        :meth:`region_of` + :meth:`IdentifierSpace.midpoint` exactly.
        """
        arr = np.asarray(vs_ids, dtype=np.int64)
        size = self.space.size
        if len(self._vs_by_id) == 1:
            missing = [int(v) for v in arr if int(v) not in self._vs_by_id]
            if missing:
                raise DHTError(f"no virtual server with id {missing[0]}")
            return np.full(len(arr), size // 2, dtype=np.int64)
        self._ensure_index()
        assert self._sorted_ids is not None
        ids = self._sorted_ids
        pos = np.searchsorted(ids, arr, side="left")
        if np.any(pos >= len(ids)) or np.any(ids[np.minimum(pos, len(ids) - 1)] != arr):
            bad = arr[(pos >= len(ids)) | (ids[np.minimum(pos, len(ids) - 1)] != arr)]
            raise DHTError(f"no virtual server with id {int(bad[0])}")
        pred = ids[pos - 1]  # pos-1 == -1 wraps to the last id, as intended
        length = (arr - pred) % size
        return (pred + 1 + length // 2) % size

    def fractions(self) -> np.ndarray:
        """Identifier-space fraction ``f`` owned by each VS, in ring order.

        These are the ``f`` values the paper's load generators consume;
        for random placement they are (approximately) exponentially
        distributed with mean ``1 / num_virtual_servers``.
        """
        self._ensure_index()
        assert self._sorted_ids is not None
        ids = self._sorted_ids
        gaps = np.empty(len(ids), dtype=np.float64)
        if len(ids) == 1:
            gaps[0] = self.space.size
        else:
            gaps[1:] = np.diff(ids)
            gaps[0] = (ids[0] - ids[-1]) % self.space.size
        return gaps / self.space.size

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_virtual_server(self, node: PhysicalNode, vs_id: int, load: float = 0.0) -> VirtualServer:
        """Join a new virtual server with identifier ``vs_id`` onto ``node``."""
        self.space.validate(vs_id)
        if vs_id in self._vs_by_id:
            raise DuplicateIdError(f"virtual server id {vs_id} already on the ring")
        vs = VirtualServer(vs_id, node, load)
        node.virtual_servers.append(vs)
        self._vs_by_id[vs_id] = vs
        self._index_insert(vs)
        if self._listeners:
            self._notify("add", vs_id)
        return vs

    def remove_virtual_server(self, vs: VirtualServer | int) -> VirtualServer:
        """Remove a virtual server from the ring (a DHT *leave*).

        Its region is implicitly absorbed by its ring successor; its load
        is dropped (callers that model object re-hosting should move the
        load explicitly before removal).
        """
        vs_obj = vs if isinstance(vs, VirtualServer) else self.vs(int(vs))
        if vs_obj.vs_id not in self._vs_by_id:
            raise DHTError(f"virtual server {vs_obj.vs_id} is not on the ring")
        del self._vs_by_id[vs_obj.vs_id]
        vs_obj.owner.unhost(vs_obj)
        self._index_remove(vs_obj.vs_id)
        if self._listeners:
            self._notify("remove", vs_obj.vs_id)
        return vs_obj

    def transfer_virtual_server(self, vs: VirtualServer | int, target: PhysicalNode) -> VirtualServer:
        """Move a virtual server to another physical node (VST).

        Structurally this is a leave followed by a join with the *same*
        identifier, so the ring's region map is unchanged — only the
        hosting (and therefore the load placement) moves.
        """
        vs_obj = vs if isinstance(vs, VirtualServer) else self.vs(int(vs))
        if not target.alive:
            raise DHTError(f"cannot transfer to dead node {target.index}")
        if vs_obj.owner is target:
            return vs_obj
        vs_obj.owner.unhost(vs_obj)
        target.host(vs_obj)
        if self._listeners:
            self._notify("transfer", vs_obj.vs_id)
        return vs_obj

    def check_invariants(self) -> None:
        """Validate cross-references; raises :class:`DHTError` on corruption.

        Checked invariants: every VS is hosted by its owner; every hosted
        VS is registered; regions tile the full ring exactly.
        """
        for node in self.nodes:
            for vs in node.virtual_servers:
                if vs.owner is not node:
                    raise DHTError(
                        f"vs {vs.vs_id} hosted by node {node.index} but owned by {vs.owner.index}"
                    )
                if self._vs_by_id.get(vs.vs_id) is not vs:
                    raise DHTError(f"vs {vs.vs_id} hosted but not registered on the ring")
        for vs in self._vs_by_id.values():
            if vs not in vs.owner.virtual_servers:
                raise DHTError(f"vs {vs.vs_id} registered but not hosted by its owner")
        total = sum(self.region_of(v).length for v in self._vs_by_id.values())
        if total != self.space.size:
            raise DHTError(
                f"regions cover {total} identifiers, expected {self.space.size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChordRing(bits={self.space.bits}, nodes={len(self.nodes)}, "
            f"vs={len(self._vs_by_id)})"
        )


def total_load(nodes: Iterable[PhysicalNode]) -> float:
    """Total load ``L`` over ``nodes``."""
    return sum(n.load for n in nodes)


def total_capacity(nodes: Iterable[PhysicalNode]) -> float:
    """Total capacity ``C`` over ``nodes``."""
    return sum(n.capacity for n in nodes)
