"""Churn primitives: node join, graceful leave, and crash.

The paper's K-nary tree must survive membership churn (Section 3.1.1);
these helpers drive the ring through the corresponding structural
changes so the tree-repair experiments can exercise them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.ringlike import RingLike
from repro.dht.node import PhysicalNode
from repro.exceptions import DHTError
from repro.util.rng import ensure_rng


@dataclass
class ChurnStats:
    """Counters accumulated while driving churn."""

    joins: int = 0
    leaves: int = 0
    crashes: int = 0
    vs_created: int = 0
    vs_removed: int = 0
    load_reassigned: float = 0.0
    events: list[str] = field(default_factory=list)


def join_node(
    ring: ChordRing,
    capacity: float,
    vs_count: int,
    rng: int | None | np.random.Generator = None,
    site: int | None = None,
    stats: ChurnStats | None = None,
) -> PhysicalNode:
    """Join a fresh physical node with ``vs_count`` random virtual servers.

    Each new virtual server splits the region of its ring successor; in a
    real deployment the successor would hand over the objects in the split
    arc.  We model that by moving a proportional share of the successor's
    load onto the new VS.
    """
    if vs_count < 1:
        raise DHTError(f"vs_count must be >= 1, got {vs_count}")
    gen = ensure_rng(rng)
    node = PhysicalNode(index=len(ring.nodes), capacity=capacity, site=site)
    ring.nodes.append(node)
    for _ in range(vs_count):
        vs_id = _draw_free_id(ring, gen)
        old_owner_vs = ring.successor(vs_id)
        old_region = ring.region_of(old_owner_vs)
        new_vs = ring.add_virtual_server(node, vs_id)
        # Proportional load handover from the split successor region.
        new_region = ring.region_of(new_vs)
        if old_region.length > 0 and old_owner_vs.load > 0:
            share = old_owner_vs.load * (new_region.length / old_region.length)
            old_owner_vs.load -= share
            new_vs.load += share
            if stats is not None:
                stats.load_reassigned += share
        if stats is not None:
            stats.vs_created += 1
    if stats is not None:
        stats.joins += 1
        stats.events.append(f"join node {node.index}")
    return node


def leave_node(ring: ChordRing, node: PhysicalNode, stats: ChurnStats | None = None) -> None:
    """Graceful leave: the node hands each VS's load to its ring successor."""
    _depart(ring, node, hand_over_load=True, stats=stats)
    if stats is not None:
        stats.leaves += 1
        stats.events.append(f"leave node {node.index}")


def crash_node(ring: RingLike, node: PhysicalNode, stats: ChurnStats | None = None) -> None:
    """Crash: virtual servers vanish; successors absorb regions and load.

    Load still moves to the successor because in a storage DHT replicas
    re-materialise the objects at the new owner; what is *lost* is the
    node's soft state — including any K-nary tree nodes it hosted, which
    is exactly what the tree-repair experiments stress.
    """
    _depart(ring, node, hand_over_load=True, stats=stats)
    if stats is not None:
        stats.crashes += 1
        stats.events.append(f"crash node {node.index}")


def _depart(ring: RingLike, node: PhysicalNode, hand_over_load: bool, stats: ChurnStats | None) -> None:
    if not node.alive:
        raise DHTError(f"node {node.index} already departed")
    if len(node.virtual_servers) == ring.num_virtual_servers:
        raise DHTError("cannot remove the last node of the ring")
    for vs in list(node.virtual_servers):
        load = vs.load
        ring.remove_virtual_server(vs)
        if hand_over_load and load > 0:
            successor_vs = ring.successor(vs.vs_id)
            successor_vs.load += load
            if stats is not None:
                stats.load_reassigned += load
        if stats is not None:
            stats.vs_removed += 1
    node.alive = False


def _draw_free_id(ring: ChordRing, gen: np.random.Generator) -> int:
    for _ in range(10_000):
        vs_id = int(gen.integers(0, ring.space.size))
        try:
            ring.vs(vs_id)
        except DHTError:
            return vs_id
    raise DHTError("could not find a free identifier")  # pragma: no cover
