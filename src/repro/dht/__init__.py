"""A Chord DHT simulator with virtual servers.

The simulator models the structural level of Chord that the paper's load
balancer depends on:

* physical nodes with heterogeneous capacities, each hosting multiple
  *virtual servers* (VS);
* a consistent-hashing ring: the VS with identifier ``s`` owns the region
  ``(predecessor(s), s]`` of the identifier space;
* iterative finger-table lookups (for hop-count accounting);
* churn primitives — VS join/leave, node join/leave/crash — and the
  *virtual server transfer* operation (a leave followed by a join on a
  different physical node) that is the unit of load movement.
"""

from repro.dht.node import PhysicalNode
from repro.dht.virtual_server import VirtualServer
from repro.dht.chord import ChordRing
from repro.dht.ringlike import RingLike
from repro.dht.lookup import lookup_hops, lookup_path
from repro.dht.churn import ChurnStats, crash_node, join_node, leave_node
from repro.dht.events import RingDelta, RingEventLog
from repro.dht.storage import ObjectStore, StoredObject
from repro.dht.split import split_until_movable, split_virtual_server

__all__ = [
    "PhysicalNode",
    "VirtualServer",
    "ChordRing",
    "RingLike",
    "lookup_hops",
    "lookup_path",
    "ChurnStats",
    "RingDelta",
    "RingEventLog",
    "crash_node",
    "join_node",
    "leave_node",
    "ObjectStore",
    "StoredObject",
    "split_virtual_server",
    "split_until_movable",
]
