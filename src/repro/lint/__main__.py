"""Entry point for ``python -m repro.lint``.

Guarded so that module walkers (e.g. ``scripts/gen_api_docs.py``,
which imports every ``repro`` module) can import this file without
triggering a lint run.
"""

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
