"""Rule ``no-fork-in-protocol``: process management stays in one place.

The sharded balancer's byte-identity contract rests on two structural
guarantees: every worker process is driven through
:class:`repro.parallel.WorkerPool` (so inline and process execution are
interchangeable), and workers receive *all* of their inputs explicitly
through a picklable task (so no ambient rng, clock or registry state
leaks across the fork).  This rule enforces both mechanically in the
protocol packages:

* importing ``multiprocessing``, ``subprocess`` or ``concurrent.futures``
  is forbidden everywhere in protocol code except
  ``repro.parallel.pool``, the one sanctioned executor owner;
* calling ``os.fork``/``os.forkpty``/``os.spawn*`` is forbidden outright;
* constructing a ``ProcessPoolExecutor`` outside ``repro.parallel.pool``
  is forbidden even if the import slipped through an alias;
* worker entry points in ``repro.parallel`` (module-level functions
  named ``*_worker``) must take their work as an explicit first
  parameter named ``task``, ``seed``, ``seeds`` or ``rng`` — a worker
  signature that hides its inputs cannot be replayed deterministically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, dotted_name

#: Modules whose import into protocol code means process management is
#: happening outside the sanctioned pool abstraction.
_BANNED_MODULES = ("multiprocessing", "subprocess", "concurrent.futures")

#: The one module allowed to import executors and talk to the OS about
#: processes.
_POOL_MODULE = "repro.parallel.pool"

_OS_FORK_FUNCS = frozenset(
    {"fork", "forkpty", "spawnl", "spawnle", "spawnlp", "spawnlpe",
     "spawnv", "spawnve", "spawnvp", "spawnvpe", "posix_spawn"}
)

#: Acceptable names for a worker entry point's first parameter: the
#: explicit, picklable carrier of everything the worker may depend on.
_WORKER_FIRST_PARAMS = frozenset({"task", "seed", "seeds", "rng"})


class NoForkInProtocolRule(Rule):
    """Forbid ad-hoc process management in protocol packages."""

    name = "no-fork-in-protocol"
    severity = Severity.ERROR
    description = (
        "process management (multiprocessing/subprocess/executors/os.fork) "
        "is forbidden in protocol code outside repro.parallel.pool, and "
        "*_worker entry points must take explicit task/seed inputs"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every process-management violation in a protocol module."""
        if not ctx.is_protocol:
            return
        is_pool = ctx.module == _POOL_MODULE
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                yield from self._check_import(
                    ctx, node, [alias.name for alias in node.names], is_pool
                )
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                yield from self._check_import(ctx, node, [node.module], is_pool)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, is_pool)
        if ctx.in_package("parallel"):
            yield from self._check_worker_signatures(ctx)

    def _check_import(
        self,
        ctx: FileContext,
        node: ast.AST,
        modules: list[str],
        is_pool: bool,
    ) -> Iterator[Finding]:
        if is_pool:
            return
        for module in modules:
            for banned in _BANNED_MODULES:
                if module == banned or module.startswith(banned + "."):
                    yield ctx.finding(
                        self,
                        node,
                        f"import of {module} in protocol code; process "
                        f"management belongs in {_POOL_MODULE} "
                        "(use repro.parallel.WorkerPool)",
                    )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, is_pool: bool
    ) -> Iterator[Finding]:
        chain = dotted_name(node.func)
        if not chain:
            return
        if len(chain) == 2 and chain[0] == "os" and chain[1] in _OS_FORK_FUNCS:
            yield ctx.finding(
                self,
                node,
                f"os.{chain[1]}() in protocol code; processes are owned "
                f"by {_POOL_MODULE}",
            )
        elif chain[-1] == "ProcessPoolExecutor" and not is_pool:
            yield ctx.finding(
                self,
                node,
                "ProcessPoolExecutor constructed outside "
                f"{_POOL_MODULE}; use repro.parallel.WorkerPool",
            )

    def _check_worker_signatures(self, ctx: FileContext) -> Iterator[Finding]:
        """Module-level ``*_worker`` functions must take explicit inputs."""
        for node in ast.iter_child_nodes(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.endswith("_worker"):
                continue
            args = node.args.posonlyargs + node.args.args
            if not args or args[0].arg not in _WORKER_FIRST_PARAMS:
                got = args[0].arg if args else "nothing"
                yield ctx.finding(
                    self,
                    node,
                    f"worker entry point {node.name} takes {got!r} first; "
                    "workers must receive their inputs explicitly as "
                    "task/seed/seeds/rng (no ambient state across the fork)",
                )
