"""Rule ``no-float-equality``: load/capacity arithmetic never uses ``==``.

The protocol's bookkeeping — ``<L, C, L_min>`` aggregates, spare-
capacity deltas, shed excesses — is float arithmetic, and transfers
subtract/re-add the same quantities along different code paths.  An
exact ``==``/``!=`` between two independently *computed* loads is a
latent heisen-bug: it holds on one summation order and fails on
another.  Comparisons belong to ``math.isclose`` or an explicit
tolerance (see ``check_conservation`` in :mod:`repro.core.report`).

Flagged (in all of ``src/repro``):

* ``==`` / ``!=`` where either side is a non-zero float literal;
* ``==`` / ``!=`` where either side is a name/attribute matching the
  load vocabulary (``load``, ``capacity``, ``delta``, ``excess``,
  ``weight``) or a call to ``sum``/``.sum``.

Comparisons against literal ``0``/``0.0`` are allowed: the exact-zero
sentinel ("nothing accumulated yet", "empty weight vector") is
well-defined in IEEE arithmetic and used as a guard before division.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, dotted_name

_LOAD_NAME_RE = re.compile(
    r"(^|_)(load|loads|capacity|capacities|delta|excess|weight|min_vs_load)($|_)",
    re.IGNORECASE,
)


def _is_zero_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value) == 0.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_zero_literal(node.operand)
    return False


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _is_load_expr(node: ast.expr) -> bool:
    """Whether ``node`` reads like a load/capacity quantity."""
    chain = dotted_name(node)
    if chain and _LOAD_NAME_RE.search(chain[-1]):
        return True
    if isinstance(node, ast.Call):
        fn = dotted_name(node.func)
        return bool(fn) and fn[-1] == "sum"
    if isinstance(node, ast.BinOp):
        return _is_load_expr(node.left) or _is_load_expr(node.right)
    return False


class NoFloatEqualityRule(Rule):
    """Forbid exact equality on float load/capacity expressions."""

    name = "no-float-equality"
    severity = Severity.ERROR
    description = (
        "== / != on load/capacity floats is order-of-summation dependent; "
        "use math.isclose or an explicit tolerance (0/0.0 sentinels allowed)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per exact float comparison in ``ctx``."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_zero_literal(left) or _is_zero_literal(right):
                    continue
                if (
                    _is_float_literal(left)
                    or _is_float_literal(right)
                    or _is_load_expr(left)
                    or _is_load_expr(right)
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "exact ==/!= on a float load/capacity expression; "
                        "use math.isclose or an explicit tolerance",
                    )
                    break  # one finding per comparison chain
