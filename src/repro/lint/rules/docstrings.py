"""Rule ``docstring-coverage``: the operator-facing API is documented.

``repro.obs`` and ``repro.lint`` are the packages operators script
against directly (wiring sinks, registering rules), so their public
surface carries a hard docstring requirement — previously enforced at
runtime by ``tests/test_obs_docstrings.py``, now enforced statically
here (the test remains as a thin wrapper over this rule).

For every module in a documented package (:data:`DOCUMENTED_PACKAGES`
on the engine), the rule requires a docstring on:

* the module itself;
* every public (non-underscore) class, function and method —
  including ``__init__`` when it takes parameters beyond ``self``
  (construction arguments are API);
* overload stubs and ``...``-bodied protocol members are exempt.

Private names (leading underscore) and dunders other than a
parameterised ``__init__`` are not required to carry docstrings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule


def _has_docstring(node: ast.Module | ast.ClassDef | ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return ast.get_docstring(node) is not None


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_stub_body(body: list[ast.stmt]) -> bool:
    """Whether the body is ``...``/``pass`` only (a protocol/overload stub)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            if stmt.value.value is Ellipsis:
                continue
        return False
    return True


def _requires_doc(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    if _is_stub_body(fn.body):
        return False
    for deco in fn.decorator_list:
        if isinstance(deco, ast.Name) and deco.id == "overload":
            return False
    if _is_public(fn.name):
        return True
    if fn.name == "__init__":
        params = [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
        params = [p for p in params if p.arg not in ("self", "cls")]
        return bool(params) or fn.args.vararg is not None or fn.args.kwarg is not None
    return False


class DocstringCoverageRule(Rule):
    """Require docstrings on the public surface of documented packages."""

    name = "docstring-coverage"
    severity = Severity.ERROR
    description = (
        "modules and public classes/functions/methods in repro.obs and "
        "repro.lint must carry docstrings"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per missing docstring in ``ctx``."""
        if not ctx.is_documented_api:
            return
        if not _has_docstring(ctx.tree):
            yield ctx.finding(self, None, f"module {ctx.module} has no docstring")
        yield from self._check_body(ctx, ctx.tree.body, prefix="")

    def _check_body(
        self, ctx: FileContext, body: list[ast.stmt], prefix: str
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not _is_public(node.name):
                    continue
                qualname = f"{prefix}{node.name}"
                if not _has_docstring(node):
                    yield ctx.finding(
                        self, node, f"public class {qualname} has no docstring"
                    )
                yield from self._check_body(ctx, node.body, prefix=f"{qualname}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _requires_doc(node):
                    continue
                qualname = f"{prefix}{node.name}"
                if not _has_docstring(node):
                    kind = "method" if prefix else "function"
                    yield ctx.finding(
                        self,
                        node,
                        f"public {kind} {qualname} has no docstring",
                    )
