"""Rule ``conservation-guard``: load-moving code runs an invariant check.

VSA/VST *move* load; they must never create or destroy it.  The runtime
checks live in :mod:`repro.core.report` (``check_conservation`` over a
:class:`~repro.core.report.BalanceReport`) and
:mod:`repro.core.records` (``assert_loads_conserved`` over two scalar
totals); this rule makes wiring them non-optional.

A function in ``core``/``dht``/``app`` counts as a **load mutator**
when it calls ``transfer_virtual_server`` (the ring's move primitive)
or is itself named ``rebalance``.  Every load mutator must, somewhere
in its own body, call one of the recognised guards:

* ``check_conservation`` / ``assert_loads_conserved`` — the dedicated
  conservation checks;
* ``check_invariants`` — the ring's structural validator (which
  includes load-accounting consistency);
* ``rebalance`` — delegating to the guarded round entry point counts.

The definition of ``transfer_virtual_server`` itself is exempt: it is
the conserving primitive the guards are defined against (its own
correctness is covered by ring invariants and the stateful test suite).
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, called_names, iter_function_defs

_MUTATOR_CALLS = frozenset({"transfer_virtual_server"})
_MUTATOR_NAMES = frozenset({"rebalance"})
_GUARD_CALLS = frozenset(
    {
        "check_conservation",
        "assert_loads_conserved",
        "check_invariants",
        "rebalance",
    }
)
_EXEMPT_DEFS = frozenset({"transfer_virtual_server"})


class ConservationGuardRule(Rule):
    """Require an invariant check in functions that move load."""

    name = "conservation-guard"
    severity = Severity.ERROR
    description = (
        "functions that move virtual-server load (transfer_virtual_server "
        "callers, rebalance) must call a conservation/invariant check"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per unguarded load mutator in ``ctx``."""
        if not ctx.in_package("core", "dht", "app"):
            return
        for fn, owner in iter_function_defs(ctx.tree):
            if fn.name in _EXEMPT_DEFS:
                continue
            calls = called_names(fn.body)
            is_mutator = fn.name in _MUTATOR_NAMES or bool(calls & _MUTATOR_CALLS)
            if not is_mutator:
                continue
            if calls & _GUARD_CALLS:
                continue
            where = f"{owner.name}.{fn.name}" if owner is not None else fn.name
            yield ctx.finding(
                self,
                fn,
                f"{where} moves virtual-server load but never calls a "
                "conservation guard (check_conservation / "
                "assert_loads_conserved / check_invariants)",
            )
