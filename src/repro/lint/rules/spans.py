"""Rule ``obs-span-coverage``: phase entry points emit trace telemetry.

PR 1's observability layer is only trustworthy if the protocol phases
actually report through it — a phase that silently stops emitting spans
turns the per-phase cost accounting (and every figure derived from it)
into stale fiction.  This rule pins the instrumentation down statically
in two parts:

**Registry check.**  Every public phase entry point of ``repro.core``
must exist and be instrumented.  The registry below maps core modules
to the callables that constitute the protocol's phase surface; each
must reference a tracer (a ``tracer`` parameter or ``self.tracer``)
*and* emit (`.span(...)`/`.event(...)`) or delegate the tracer onward.

**Plumbing check.**  Any function in ``repro.core`` that accepts a
``tracer`` parameter must use it — emit through it, guard on
``tracer.enabled``, or pass it along to a callee.  Accepting a tracer
and dropping it on the floor is how span gaps are born.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, iter_function_defs, walk_body

#: module basename -> function/method names forming the phase surface.
PHASE_ENTRY_POINTS: dict[str, frozenset[str]] = {
    "balancer": frozenset({"run_round"}),
    "lbi": frozenset({"collect_lbi_reports", "aggregate_lbi"}),
    "classification": frozenset({"classify_all"}),
    "vsa": frozenset({"run"}),
    "vst": frozenset({"execute_transfers"}),
}

_EMIT_METHODS = frozenset({"span", "event"})


class ObsSpanCoverageRule(Rule):
    """Require tracer instrumentation on core phase entry points."""

    name = "obs-span-coverage"
    severity = Severity.ERROR
    description = (
        "core phase entry points must emit tracer spans/events; any core "
        "function accepting a tracer must use or forward it"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per uninstrumented entry point or dropped tracer."""
        if not ctx.in_package("core"):
            return
        basename = ctx.package_parts[-1]
        required = PHASE_ENTRY_POINTS.get(basename, frozenset())
        seen: set[str] = set()
        for fn, owner in iter_function_defs(ctx.tree):
            takes_tracer = any(
                arg.arg == "tracer"
                for arg in [
                    *fn.args.posonlyargs,
                    *fn.args.args,
                    *fn.args.kwonlyargs,
                ]
            )
            reads_self_tracer = self._reads_self_tracer(fn)
            uses = self._uses_tracer(fn)
            if fn.name in required:
                seen.add(fn.name)
                where = f"{owner.name}.{fn.name}" if owner is not None else fn.name
                if not (takes_tracer or reads_self_tracer):
                    yield ctx.finding(
                        self,
                        fn,
                        f"phase entry point {where} has no tracer source "
                        "(no tracer parameter and no self.tracer read)",
                    )
                elif not uses:
                    yield ctx.finding(
                        self,
                        fn,
                        f"phase entry point {where} never emits a span/event "
                        "or forwards its tracer",
                    )
            elif takes_tracer and not uses:
                where = f"{owner.name}.{fn.name}" if owner is not None else fn.name
                yield ctx.finding(
                    self,
                    fn,
                    f"{where} accepts a tracer parameter but never uses or "
                    "forwards it",
                )
        for missing in sorted(required - seen):
            yield ctx.finding(
                self,
                None,
                f"expected phase entry point {missing}() not found in "
                f"{ctx.module} (update PHASE_ENTRY_POINTS if it moved)",
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _reads_self_tracer(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for node in walk_body(fn.body):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "tracer"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False

    @staticmethod
    def _uses_tracer(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """Emit through a tracer, guard on it, or pass one to a callee.

        Accepts any ``X.span(...)``/``X.event(...)`` call, any read of
        ``X.enabled``/binding of a tracer-ish name, or ``tracer`` /
        ``self.tracer`` appearing as a call argument (delegation) or an
        assignment source (re-binding before use).
        """
        for node in walk_body(fn.body):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _EMIT_METHODS:
                    return True
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if ObsSpanCoverageRule._is_tracer_ref(arg):
                        return True
            elif isinstance(node, ast.Assign):
                if ObsSpanCoverageRule._is_tracer_ref(node.value):
                    return True
        return False

    @staticmethod
    def _is_tracer_ref(node: ast.expr) -> bool:
        if isinstance(node, ast.IfExp):
            return ObsSpanCoverageRule._is_tracer_ref(
                node.body
            ) or ObsSpanCoverageRule._is_tracer_ref(node.orelse)
        if isinstance(node, ast.BoolOp):
            return any(ObsSpanCoverageRule._is_tracer_ref(v) for v in node.values)
        if isinstance(node, ast.Name) and node.id == "tracer":
            return True
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "tracer"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "balancer")
        )
