"""Rule ``durable-write-discipline``: recovery I/O goes through one door.

Crash recovery is only as good as its weakest write: a snapshot written
with a bare ``open(...).write(...)`` can be torn by the very crash it
exists to survive.  The durability contract therefore lives in exactly
one module — :mod:`repro.recovery.durable` — which owns the
rename-on-commit pattern (temp file + ``fsync`` + ``os.replace`` +
directory ``fsync``) and the fsynced append file.  Everything else in
:mod:`repro.recovery` must route its file I/O through that module.

This rule enforces the boundary mechanically inside the ``recovery``
package (``repro.recovery.durable`` itself is exempt):

* calling the ``open`` builtin, ``os.fdopen``, or a ``.open(...)``
  method (e.g. ``Path.open``) is forbidden;
* calling ``os.fsync``, ``os.replace``, ``os.rename``, ``os.truncate``
  or ``os.ftruncate`` directly is forbidden — sequencing those calls
  correctly is precisely the durable module's job;
* calling ``.write_text(...)`` / ``.write_bytes(...)`` (the Path
  shortcuts that truncate in place, torn-write hazards both) is
  forbidden.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, dotted_name

#: The one module allowed to open, fsync, rename and truncate files.
_DURABLE_MODULE = "repro.recovery.durable"

#: ``os.*`` functions whose correct sequencing IS the durability
#: contract; calling them ad hoc means reimplementing it.
_OS_IO_FUNCS = frozenset({"fsync", "replace", "rename", "truncate", "ftruncate", "fdopen"})

#: Method names that open or mutate files in place.
_BANNED_METHODS = frozenset({"open", "write_text", "write_bytes"})


class DurableWriteDisciplineRule(Rule):
    """Forbid ad-hoc file I/O in the recovery package."""

    name = "durable-write-discipline"
    severity = Severity.ERROR
    description = (
        "file I/O in repro.recovery must go through repro.recovery.durable "
        "(atomic rename-on-commit writes, fsynced appends) — no bare "
        "open()/os.fsync()/os.replace()/write_text()"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every ad-hoc file I/O call in a recovery module."""
        if not ctx.in_package("recovery"):
            return
        if ctx.module == _DURABLE_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if not chain:
                continue
            if chain == ["open"]:
                yield ctx.finding(
                    self,
                    node,
                    "bare open() in recovery code; use "
                    f"{_DURABLE_MODULE} (atomic_write_*/DurableAppendFile)",
                )
            elif len(chain) == 2 and chain[0] == "os" and chain[1] in _OS_IO_FUNCS:
                yield ctx.finding(
                    self,
                    node,
                    f"os.{chain[1]}() in recovery code; durability "
                    f"sequencing belongs in {_DURABLE_MODULE}",
                )
            elif len(chain) >= 2 and chain[-1] in _BANNED_METHODS:
                yield ctx.finding(
                    self,
                    node,
                    f".{chain[-1]}() in recovery code; write through "
                    f"{_DURABLE_MODULE} so the write is atomic and synced",
                )
