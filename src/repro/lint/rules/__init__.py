"""The rule registry for :mod:`repro.lint`.

:data:`ALL_RULES` is the canonical ordered tuple of rule instances the
engine runs by default.  Order matters only for readability of output
when several rules fire on one line (findings are ultimately sorted by
location); keep determinism rules first, hygiene rules last, and add
new rules by appending an instance here.
"""

from __future__ import annotations

from repro.lint.rules.base import Rule
from repro.lint.rules.conservation import ConservationGuardRule
from repro.lint.rules.defaults import MutableDefaultArgsRule
from repro.lint.rules.docstrings import DocstringCoverageRule
from repro.lint.rules.durable import DurableWriteDisciplineRule
from repro.lint.rules.exceptions import ExceptionHygieneRule
from repro.lint.rules.floats import NoFloatEqualityRule
from repro.lint.rules.forks import NoForkInProtocolRule
from repro.lint.rules.iteration import NoUnorderedIterationRule
from repro.lint.rules.retry import BoundedRetryRule
from repro.lint.rules.rng import NoUnseededRngRule
from repro.lint.rules.spans import ObsSpanCoverageRule
from repro.lint.rules.streams import ParallelTaskPurityRule, RngStreamDisciplineRule
from repro.lint.rules.wallclock import NoWallclockRule

#: Every built-in rule, in default execution order.
ALL_RULES: tuple[Rule, ...] = (
    NoUnseededRngRule(),
    NoWallclockRule(),
    NoUnorderedIterationRule(),
    BoundedRetryRule(),
    RngStreamDisciplineRule(),
    ParallelTaskPurityRule(),
    NoFloatEqualityRule(),
    NoForkInProtocolRule(),
    DurableWriteDisciplineRule(),
    ConservationGuardRule(),
    ObsSpanCoverageRule(),
    ExceptionHygieneRule(),
    MutableDefaultArgsRule(),
    DocstringCoverageRule(),
)

__all__ = [
    "ALL_RULES",
    "Rule",
    "BoundedRetryRule",
    "ConservationGuardRule",
    "DocstringCoverageRule",
    "DurableWriteDisciplineRule",
    "ExceptionHygieneRule",
    "MutableDefaultArgsRule",
    "NoFloatEqualityRule",
    "NoForkInProtocolRule",
    "NoUnorderedIterationRule",
    "NoUnseededRngRule",
    "NoWallclockRule",
    "ObsSpanCoverageRule",
    "ParallelTaskPurityRule",
    "RngStreamDisciplineRule",
]
