"""Rules ``rng-stream-discipline`` and ``parallel-task-purity``.

Both rules are statements about the *parallel* determinism contract:
:class:`repro.parallel.pool.WorkerPool` promises byte-identical results
between ``process`` and ``inline`` modes, which only holds when the
work crossing the submission boundary is a pure function of its task
payload.

``rng-stream-discipline`` enforces the repository's stream topology:

* no module-level ``Generator`` bindings — a stream constructed at
  import time is process-global state whose consumption order depends
  on import order and sharing, not on the scenario seed (local check);
* no ``Generator`` object may cross a ``WorkerPool`` submission
  boundary unless it came from a per-shard ``spawn_rngs`` split — a
  *shared* stream consumed by N workers interleaves differently under
  process and inline execution, silently breaking digest identity.
  The positive pattern is the one ``ShardedLoadBalancer`` uses:
  ``spawn_rngs(seed, n)`` then one child stream per task
  (interprocedural check over the flow analysis's submission registry).

``parallel-task-purity`` closes the loop on the *callable*: anything
submitted to ``map_ordered`` must be effect-closed under the flow
lattice — transitively free of wall-clock reads, I/O, global mutation,
nested forking, unordered iteration, and global/ambient RNG draws.
Draws from generators the task *receives in its payload* (parameters,
per-shard spawns) are fine; draws from module globals, closures or
instance attributes are not, because that state is re-imported fresh
in worker processes but shared in inline mode.  Lambdas and
statically-unresolvable callables are rejected outright — the analysis
cannot prove anything about them, and the conservative direction is to
require a named module-level task function.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.flow.analysis import FlowAnalysis

#: Transitive site kinds that disqualify a submitted callable.
#: ``rng-consume`` itself is *not* here: drawing from a payload stream
#: is the sanctioned per-shard pattern.  The refinements are.
FORBIDDEN_TASK_KINDS = frozenset(
    {
        "ambient-rng",
        "fork",
        "global-mutation",
        "global-rng",
        "io",
        "unordered-iteration",
        "wall-clock",
    }
)

#: Callable names recognised as Generator factories (mirrors
#: :data:`repro.lint.flow.callgraph.GENERATOR_FACTORIES`, duplicated to
#: keep the local check importable without the flow package).
_FACTORY_NAMES = frozenset({"ensure_rng", "default_rng"})


class RngStreamDisciplineRule(Rule):
    """Every Generator traces to a per-run SeedSequence spawn."""

    name = "rng-stream-discipline"
    severity = Severity.ERROR
    description = (
        "Generators must trace to a per-run SeedSequence spawn: no "
        "module-level streams, and none crossing a WorkerPool boundary "
        "unless spawned per-shard via spawn_rngs"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag module-level Generator bindings (import-time streams)."""
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            chain = dotted_name(value.func)
            if not chain or chain[-1] not in _FACTORY_NAMES:
                continue
            names = ", ".join(
                t.id for t in node.targets if isinstance(t, ast.Name)
            )
            yield ctx.finding(
                self,
                node,
                f"module-level Generator binding '{names}' is process-global "
                "state consumed in import/sharing order; construct streams "
                "inside the entry point and thread them explicitly",
            )

    def check_project(self, analysis: "FlowAnalysis") -> Iterator[Finding]:
        """Flag shared streams crossing a WorkerPool submission boundary."""
        for sub in analysis.submissions():
            if sub.shared_stream_origin is None:
                continue
            fn = analysis.function(sub.caller)
            if fn is None:
                continue
            yield Finding(
                rule=self.name,
                path=fn.rel_path,
                line=sub.line,
                column=0,
                severity=self.severity,
                message=(
                    f"a {sub.shared_stream_origin} Generator crosses the "
                    f"WorkerPool submission boundary in '{sub.caller}'; "
                    "shared streams interleave differently between process "
                    "and inline modes — spawn one child stream per task via "
                    "repro.util.rng.spawn_rngs"
                ),
            )


class ParallelTaskPurityRule(Rule):
    """Callables submitted to the worker pool must be effect-closed."""

    name = "parallel-task-purity"
    severity = Severity.ERROR
    description = (
        "callables submitted to repro.parallel.pool must be effect-closed "
        "(no transitive wall-clock/io/global-mutation/fork/unordered-"
        "iteration/ambient-rng), proving process == inline digests"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """No per-file component; the rule is purely interprocedural."""
        return
        yield  # pragma: no cover - makes the override a generator

    def check_project(self, analysis: "FlowAnalysis") -> Iterator[Finding]:
        """Verify every submitted callable's transitive effect closure."""
        for sub in analysis.submissions():
            fn = analysis.function(sub.caller)
            if fn is None:
                continue
            if sub.is_lambda:
                yield self._finding(
                    fn.rel_path,
                    sub.line,
                    "lambda submitted to WorkerPool.map_ordered; tasks must "
                    "be named module-level functions so their effect closure "
                    "is statically checkable",
                )
                continue
            if sub.callee is None:
                yield self._finding(
                    fn.rel_path,
                    sub.line,
                    f"cannot statically resolve submitted callable "
                    f"'{sub.callee_text}'; submit a named module-level "
                    "function so its effect closure is checkable",
                )
                continue
            forbidden = sorted(
                analysis.kinds_of(sub.callee) & FORBIDDEN_TASK_KINDS
            )
            if not forbidden:
                continue
            chain = analysis.chain_to(sub.callee, forbidden[0])
            rendered = (
                chain.render(analysis.site_path(chain.site))
                if chain is not None
                else sub.callee
            )
            yield self._finding(
                fn.rel_path,
                sub.line,
                f"submitted task '{sub.callee}' is not effect-closed "
                f"({', '.join(forbidden)}): {rendered}; process and inline "
                "pool modes can diverge",
            )

    def _finding(self, path: str, line: int, message: str) -> Finding:
        """A finding at an explicit submission-site location."""
        return Finding(
            rule=self.name,
            path=path,
            line=line,
            column=0,
            severity=self.severity,
            message=message,
        )
