"""Rule ``no-wallclock-in-protocol``: protocol code never reads the clock.

The balancing protocol's behaviour must be a pure function of the
scenario seed; a wall-clock read in ``core``/``dht``/``ktree``/``sim``
is either dead weight or — far worse — a hidden input that makes runs
unrepeatable (e.g. a timing-dependent tie-break).  Measurement belongs
to the observability layer: :class:`repro.obs.trace.Tracer` spans and
:class:`repro.obs.profile.PhaseClock` own ``time.perf_counter`` and
expose timings without letting them feed back into protocol decisions.

Flagged in protocol modules:

* calls to ``time.time`` / ``time.perf_counter`` / ``time.monotonic`` /
  ``time.process_time`` / ``time.time_ns`` (and ``_ns`` variants),
  whether accessed as ``time.X()`` or imported by name;
* calls to ``datetime.now`` / ``datetime.utcnow``.

Interprocedurally (the ``check_project`` pass over the flow analysis),
the rule also flags protocol functions that *reach* a clock read
through a chain of non-protocol helpers — the frontier where
determinism responsibility leaks out of the protocol packages — with
the offending call chain in the message.  ``repro.obs`` is the
sanctioned clock owner and is an effect barrier (see
:mod:`repro.lint.flow.effects`).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.flow.analysis import FlowAnalysis

_CLOCK_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


class NoWallclockRule(Rule):
    """Forbid wall-clock reads in protocol packages."""

    name = "no-wallclock-in-protocol"
    severity = Severity.ERROR
    description = (
        "time.time/perf_counter/monotonic are forbidden in core/dht/ktree/sim; "
        "route timing through repro.obs (PhaseClock, Tracer spans)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per clock read in a protocol module."""
        if not ctx.is_protocol:
            return
        time_aliases, from_time = self._time_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if not chain:
                continue
            if (
                len(chain) == 2
                and chain[0] in time_aliases
                and chain[1] in _CLOCK_FUNCS
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"wall-clock read {'.'.join(chain)}() in protocol code; "
                    "use repro.obs.profile.PhaseClock or a Tracer span",
                )
            elif len(chain) == 1 and chain[0] in from_time:
                yield ctx.finding(
                    self,
                    node,
                    f"wall-clock read {chain[0]}() (imported from time) in "
                    "protocol code; use repro.obs.profile.PhaseClock",
                )
            elif chain[-1] in _DATETIME_FUNCS and "datetime" in chain:
                yield ctx.finding(
                    self,
                    node,
                    f"datetime clock read {'.'.join(chain)}() in protocol code",
                )

    def check_project(self, analysis: "FlowAnalysis") -> Iterator[Finding]:
        """Flag protocol functions transitively reaching a clock read."""
        for fn, chain in analysis.protocol_frontier("wall-clock"):
            ctx = analysis.context_for(fn.rel_path)
            if ctx is None:
                continue
            yield ctx.finding(
                self,
                fn.node,
                f"protocol function '{fn.qname}' transitively reaches a "
                f"wall-clock read: {chain.render(analysis.site_path(chain.site))}; "
                "route timing through repro.obs (PhaseClock, Tracer spans)",
            )

    @staticmethod
    def _time_imports(tree: ast.Module) -> tuple[set[str], set[str]]:
        """(aliases of the time module, clock names imported from it)."""
        aliases: set[str] = set()
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_FUNCS:
                        names.add(alias.asname or alias.name)
        return aliases, names
