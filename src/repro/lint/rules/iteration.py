"""Rule ``no-unordered-iteration``: protocol sweeps iterate in sorted order.

Python ``set`` iteration order depends on insertion history and element
hashes — two ring constructions that differ only in event interleaving
can visit the same members in different orders.  Anywhere a protocol
loop (``core``/``dht``/``ktree``/``sim``) folds floats or makes pairing
decisions over a set, that order leaks into results: float summation is
not associative, and the VSA rendezvous tie-breaks on encounter order.
(``dict`` iteration is insertion-ordered since Python 3.7 and is *not*
flagged; a dict built deterministically iterates deterministically.)

The rule statically tracks set-typed expressions:

* literals, set comprehensions, ``set(...)``/``frozenset(...)`` calls;
* set-operator results (``a | b``, ``a - b``, ...) and set-method
  results (``.union(...)``, ``.intersection(...)``, ...);
* names and ``self.*`` attributes assigned or annotated as sets;
* lookups into containers annotated ``dict[K, set[V]]`` (``d[k]``,
  ``d.get(k, ...)``, ``d.pop(k)``, ``d.setdefault(k, ...)``).

Iterating one of those in a ``for`` loop, a comprehension, or an
eagerly-ordering call (``list``/``tuple``/``sum``/``enumerate``) is a
violation unless the iterable is wrapped in ``sorted(...)`` or the
result feeds an order-insensitive consumer (``len``, ``any``, ``all``,
``min``, ``max``, ``set``, ``frozenset``, ``sorted`` itself, or a set
comprehension — whose output has no order to corrupt).  ``sum`` is *not*
order-insensitive: protocol sums are floats.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, dotted_name

_SET_TYPE_NAMES = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})
_DICT_TYPE_NAMES = frozenset({"dict", "Dict", "Mapping", "MutableMapping", "defaultdict"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_DICT_LOOKUP_METHODS = frozenset({"get", "pop", "setdefault"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
#: Consumers whose result does not depend on iteration order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "any", "all", "min", "max", "set", "frozenset"}
)
#: Calls that materialise (or fold) the iterable in encounter order.
_ORDERING_CALLS = frozenset({"list", "tuple", "sum", "enumerate"})


class _SetBindings:
    """Names (dotted) known to be sets / dicts-of-sets in one scope."""

    __slots__ = ("sets", "dict_of_sets")

    def __init__(
        self,
        sets: set[str] | None = None,
        dict_of_sets: set[str] | None = None,
    ) -> None:
        self.sets: set[str] = set(sets or ())
        self.dict_of_sets: set[str] = set(dict_of_sets or ())

    def child(self) -> "_SetBindings":
        """A copy for a nested scope (closures read enclosing bindings)."""
        return _SetBindings(self.sets, self.dict_of_sets)


def _annotation_kind(node: ast.expr | None) -> str | None:
    """Classify a type annotation as ``"set"``, ``"dict_of_sets"`` or None."""
    if node is None:
        return None
    if isinstance(node, ast.Name) and node.id in _SET_TYPE_NAMES:
        return "set"
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in _SET_TYPE_NAMES:
                return "set"
            if base.id in _DICT_TYPE_NAMES:
                args = node.slice
                if isinstance(args, ast.Tuple) and len(args.elts) == 2:
                    if _annotation_kind(args.elts[1]) == "set":
                        return "dict_of_sets"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_kind(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    return None


class NoUnorderedIterationRule(Rule):
    """Forbid order-sensitive iteration over sets in protocol modules."""

    name = "no-unordered-iteration"
    severity = Severity.ERROR
    description = (
        "iterating a set without sorted(...) in core/dht/ktree/sim makes "
        "float folds and pairing decisions order-dependent"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per unordered set iteration in ``ctx``."""
        if not ctx.is_protocol:
            return
        yield from self.scan(ctx)

    def scan(self, ctx: FileContext) -> Iterator[Finding]:
        """The protocol-gate-free scan, reused by the flow effect pass.

        The rule only *reports* inside protocol modules, but as an
        effect source (``unordered-iteration`` in the flow lattice) the
        same detection applies to every file: a non-protocol helper
        that folds a set corrupts any protocol caller's determinism.
        """
        self._parents: dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(ctx.tree)
            for child in ast.iter_child_nodes(parent)
        }
        module_scope = _SetBindings()
        self._collect_bindings(ctx.tree.body, module_scope)
        yield from self._check_scope(ctx, ctx.tree.body, module_scope)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node, module_scope)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node, module_scope)

    # -- scope handling ---------------------------------------------------
    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef, outer: _SetBindings
    ) -> Iterator[Finding]:
        scope = outer.child()
        # self.<attr> bindings are visible across all methods of the class.
        for method in cls.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_bindings(method.body, scope)
        for method in cls.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, method, scope)
            elif isinstance(method, ast.ClassDef):
                yield from self._check_class(ctx, method, scope)

    def _check_function(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        outer: _SetBindings,
    ) -> Iterator[Finding]:
        scope = outer.child()
        args = fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            kind = _annotation_kind(arg.annotation)
            if kind == "set":
                scope.sets.add(arg.arg)
            elif kind == "dict_of_sets":
                scope.dict_of_sets.add(arg.arg)
        self._collect_bindings(fn.body, scope)
        yield from self._check_scope(ctx, fn.body, scope)
        for node in self._direct_nested_defs(fn.body):
            yield from self._check_function(ctx, node, scope)

    @staticmethod
    def _direct_nested_defs(
        body: list[ast.stmt],
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Nested defs one scope level down (not inside further defs)."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node
                continue
            if isinstance(node, ast.ClassDef):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _collect_bindings(self, body: list[ast.stmt], scope: _SetBindings) -> None:
        """Record set-typed name bindings from assignments/annotations."""
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, ast.AnnAssign):
                kind = _annotation_kind(node.annotation)
                name = ".".join(dotted_name(node.target))
                if name and kind == "set":
                    scope.sets.add(name)
                elif name and kind == "dict_of_sets":
                    scope.dict_of_sets.add(name)
            elif isinstance(node, ast.Assign):
                if not self._is_set_expr(node.value, scope):
                    continue
                for target in node.targets:
                    name = ".".join(dotted_name(target))
                    if name:
                        scope.sets.add(name)

    # -- set-expression classification ------------------------------------
    def _is_set_expr(self, node: ast.expr, scope: _SetBindings) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._is_set_expr(node.left, scope) or self._is_set_expr(
                node.right, scope
            )
        if isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if len(chain) == 1 and chain[0] in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _SET_METHODS and self._is_set_expr(
                    node.func.value, scope
                ):
                    return True
                if node.func.attr in _DICT_LOOKUP_METHODS:
                    base = ".".join(dotted_name(node.func.value))
                    if base in scope.dict_of_sets:
                        return True
            return False
        if isinstance(node, ast.Subscript):
            base = ".".join(dotted_name(node.value))
            return base in scope.dict_of_sets
        name = ".".join(dotted_name(node))
        return bool(name) and name in scope.sets

    # -- flagging ----------------------------------------------------------
    def _check_scope(
        self, ctx: FileContext, body: list[ast.stmt], scope: _SetBindings
    ) -> Iterator[Finding]:
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # handled with their own scope
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._flaggable(node.iter, node, scope):
                    yield ctx.finding(
                        self,
                        node.iter,
                        "for-loop over a set; wrap the iterable in sorted(...)",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)
            ):
                if isinstance(node, ast.SetComp):
                    continue  # output is itself unordered; nothing to corrupt
                for gen in node.generators:
                    if self._flaggable(gen.iter, node, scope):
                        yield ctx.finding(
                            self,
                            gen.iter,
                            "comprehension over a set; wrap the iterable in "
                            "sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if len(chain) == 1 and chain[0] in _ORDERING_CALLS:
                    for arg in node.args:
                        if self._is_set_expr(arg, scope) and not self._consumed_unordered(node):
                            yield ctx.finding(
                                self,
                                arg,
                                f"{chain[0]}() over a set materialises an "
                                "arbitrary order; wrap in sorted(...)",
                            )

    def _flaggable(self, iterable: ast.expr, site: ast.AST, scope: _SetBindings) -> bool:
        """Whether iterating ``iterable`` at ``site`` violates the rule."""
        if not self._is_set_expr(iterable, scope):
            return False
        return not self._consumed_unordered(site)

    def _consumed_unordered(self, site: ast.AST) -> bool:
        """Whether ``site``'s result feeds an order-insensitive consumer."""
        parent = self._parents.get(site)
        if isinstance(parent, ast.Call):
            chain = dotted_name(parent.func)
            if len(chain) == 1 and chain[0] in _ORDER_INSENSITIVE:
                return site in parent.args
        return False
