"""Rule ``mutable-default-args``: no shared mutable default values.

A mutable default (``def f(x, acc=[])``) is evaluated once at ``def``
time and shared across every call.  In this codebase the classic
failure mode is an accumulator threaded through the K-nary tree
aggregation or a per-round scratch set on a balancer helper: state from
round *N* silently leaks into round *N+1*, which breaks both
correctness and the determinism contract (results start depending on
call history instead of the scenario seed).

Flagged everywhere in ``src/repro``, for both positional and
keyword-only defaults:

* ``list``/``dict``/``set`` displays and comprehensions;
* bare constructor calls ``list()`` / ``dict()`` / ``set()`` /
  ``bytearray()`` / ``collections.defaultdict(...)`` / ``Counter()``.

Use ``None`` as the default and materialise inside the body
(``acc = [] if acc is None else acc``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, dotted_name, iter_function_defs

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        chain = dotted_name(node.func)
        return bool(chain) and chain[-1] in _MUTABLE_CALLS
    return False


class MutableDefaultArgsRule(Rule):
    """Forbid mutable default argument values."""

    name = "mutable-default-args"
    severity = Severity.ERROR
    description = (
        "mutable defaults are shared across calls and leak state between "
        "rounds; default to None and materialise in the body"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per mutable default in ``ctx``."""
        for fn, owner in iter_function_defs(ctx.tree):
            where = f"{owner.name}.{fn.name}" if owner is not None else fn.name
            args = fn.args
            positional = [*args.posonlyargs, *args.args]
            # Defaults align with the *tail* of the positional parameters.
            offset = len(positional) - len(args.defaults)
            pairs = [
                (positional[offset + i], default)
                for i, default in enumerate(args.defaults)
            ]
            pairs.extend(
                (arg, default)
                for arg, default in zip(args.kwonlyargs, args.kw_defaults)
                if default is not None
            )
            for arg, default in pairs:
                if _is_mutable_default(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default for parameter '{arg.arg}' of "
                        f"{where}; use None and materialise in the body",
                    )
