"""Rule ``bounded-retry``: protocol retry loops terminate, deterministically.

The fault-injection subsystem makes "retry until it works" a live
temptation: a dropped LBI report or VSA publication *will* eventually
get through if resent forever.  But an unbounded retry loop turns a
fault plan with a high drop rate into a hang, and an unseeded jitter
source turns the retry schedule — and everything downstream of it —
into a non-reproducible run.  The sanctioned pattern is
:class:`repro.faults.RetryPolicy`: an explicit attempt bound
(``for attempt in range(1, policy.max_attempts + 1)``), capped
exponential backoff, and jitter drawn from a generator threaded through
``repro.util.rng``.

Flagged in protocol packages (:data:`repro.lint.engine.PROTOCOL_PACKAGES`):

* ``while`` loops whose test is a truthy constant (``while True:``,
  ``while 1:``) — a retry/poll loop must carry its bound in the loop
  header where a reviewer can see it;
* function definitions whose name involves retrying or backoff
  (``retry``/``backoff`` as a name fragment) that accept no RNG-like
  parameter (``rng``, ``gen``, ``generator``) — backoff jitter must
  come from a seeded stream, not module-global randomness or none.

An intentional, reviewed exception can be silenced with
``# lint: disable=bounded-retry`` on the offending line.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, iter_function_defs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.flow.analysis import FlowAnalysis

#: Parameter names accepted as "a seeded generator is threaded in".
_RNG_PARAM_NAMES = frozenset({"rng", "gen", "generator"})

#: Name fragments that mark a function as retry/backoff machinery.
_RETRY_NAME_RE = re.compile(r"(retry|backoff)", re.IGNORECASE)


class BoundedRetryRule(Rule):
    """Require explicit bounds and seeded jitter in retry machinery."""

    name = "bounded-retry"
    severity = Severity.ERROR
    description = (
        "protocol retry loops need an explicit attempt bound (no "
        "while True) and retry/backoff helpers must take a seeded rng"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per unbounded loop or jitterless helper."""
        if not ctx.is_protocol:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.While) and self._is_truthy_constant(
                node.test
            ):
                yield ctx.finding(
                    self,
                    node,
                    "unbounded 'while True' loop in protocol code; bound "
                    "retries explicitly (for attempt in range(1, "
                    "policy.max_attempts + 1)) via repro.faults.RetryPolicy",
                )
        for func, _owner in iter_function_defs(ctx.tree):
            if not _RETRY_NAME_RE.search(func.name):
                continue
            if self._has_rng_param(func):
                continue
            yield ctx.finding(
                self,
                func,
                f"retry/backoff helper '{func.name}' takes no rng-like "
                "parameter; draw jitter from a seeded generator threaded "
                "via repro.util.rng (param named rng/gen/generator)",
            )

    def check_project(self, analysis: "FlowAnalysis") -> Iterator[Finding]:
        """Flag protocol functions transitively reaching an unbounded loop.

        A ``while True`` hidden in a non-protocol helper hangs a
        protocol caller just as surely as one written inline; the flow
        pass reports the protocol frontier with the chain to the loop.
        """
        for fn, chain in analysis.protocol_frontier("unbounded-loop"):
            ctx = analysis.context_for(fn.rel_path)
            if ctx is None:
                continue
            yield ctx.finding(
                self,
                fn.node,
                f"protocol function '{fn.qname}' transitively reaches an "
                "unbounded retry loop: "
                f"{chain.render(analysis.site_path(chain.site))}; bound "
                "attempts explicitly via repro.faults.RetryPolicy",
            )

    @staticmethod
    def _is_truthy_constant(test: ast.expr) -> bool:
        """Whether a loop test is a constant that always evaluates true."""
        return isinstance(test, ast.Constant) and bool(test.value)

    @staticmethod
    def _has_rng_param(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """Whether the function signature threads a seeded generator."""
        params = [
            *func.args.posonlyargs,
            *func.args.args,
            *func.args.kwonlyargs,
        ]
        return any(p.arg in _RNG_PARAM_NAMES for p in params)
