"""The :class:`Rule` base class all lint rules derive from.

A rule is a named check over one :class:`~repro.lint.engine.FileContext`.
Subclasses set the three class attributes and implement :meth:`check`
as a generator of findings; the engine handles suppression (inline
pragmas, the baseline), ordering and output.

Shared AST helpers used by several rules live here too: resolving
dotted attribute chains (``np.random.default_rng`` ->
``("np", "random", "default_rng")``) and walking function bodies
without descending into nested ``def``/``class`` scopes.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.lint.engine import FileContext, Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.flow.analysis import FlowAnalysis


class Rule:
    """Base class for lint rules.

    Attributes
    ----------
    name:
        Kebab-case rule identifier (finding + pragma + baseline key).
    severity:
        Default severity of the rule's findings.
    description:
        One-line summary shown by ``--list-rules`` and in the docs.
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule found in ``ctx``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes the override a generator

    def check_project(self, analysis: "FlowAnalysis") -> Iterator[Finding]:
        """Yield project-wide (interprocedural) violations.

        Runs once per lint invocation, after every per-file pass, with
        the :class:`~repro.lint.flow.analysis.FlowAnalysis` built over
        all linted files.  The default is no findings — only rules with
        a transitive dimension override this.  Findings yielded here go
        through the same pragma and baseline suppression as per-file
        ones (keyed by the finding's own path/line).
        """
        return
        yield  # pragma: no cover - makes the override a generator

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


def dotted_name(node: ast.AST) -> tuple[str, ...]:
    """The dotted chain of an attribute/name expression, outermost first.

    ``np.random.default_rng`` yields ``("np", "random", "default_rng")``;
    anything that is not a pure Name/Attribute chain yields ``()``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def iter_function_defs(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Every function/method definition with its enclosing class (if any).

    Nested functions are yielded too, attributed to the class of their
    outermost enclosing method.
    """
    stack: list[tuple[ast.AST, ast.ClassDef | None]] = [(tree, None)]
    while stack:
        node, owner = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append((child, child))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner
                stack.append((child, owner))


def walk_body(nodes: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class scopes."""
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


def called_names(body: Sequence[ast.stmt]) -> set[str]:
    """Terminal names of every call made directly inside ``body``.

    ``self.ring.check_invariants()`` contributes ``"check_invariants"``;
    ``check_conservation(report)`` contributes ``"check_conservation"``.
    Nested function/class scopes are not descended into.
    """
    out: set[str] = set()
    for node in walk_body(body):
        if isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain:
                out.add(chain[-1])
    return out
