"""Rule ``no-unseeded-rng``: all randomness flows through ``repro.util.rng``.

The reproduction's headline property is that every run is a pure
function of the scenario seed.  One call to the process-global
``random`` module or to ``numpy.random``'s legacy global state breaks
that silently — results still *look* plausible, they just stop being
replicable.  The sanctioned pattern is the one :mod:`repro.util.rng`
centralises: accept ``int | None | np.random.Generator``, coerce via
``ensure_rng``, derive independent streams via ``spawn_rngs``.

Flagged anywhere outside ``repro/util/rng.py``:

* any use of the stdlib ``random`` module (``import random`` plus a
  ``random.*`` call, or ``from random import shuffle`` plus a call);
* calls into ``numpy.random.*`` / ``np.random.*`` — including
  ``default_rng`` (call :func:`repro.util.rng.ensure_rng` instead, so
  seed-or-generator coercion stays in one place).

References to ``np.random.Generator`` / ``SeedSequence`` /
``BitGenerator`` are *types*, not randomness, and stay legal everywhere
(annotations and ``isinstance`` checks need them).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.flow.analysis import FlowAnalysis

#: numpy.random attributes that are types/plumbing, not random draws.
_NUMPY_TYPE_NAMES = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox", "RandomState"}
)

#: The one module allowed to touch numpy's RNG constructors directly.
_EXEMPT_MODULES = frozenset({"repro.util.rng"})


class NoUnseededRngRule(Rule):
    """Forbid global/unseeded RNG use outside :mod:`repro.util.rng`."""

    name = "no-unseeded-rng"
    severity = Severity.ERROR
    description = (
        "stdlib random and numpy.random globals are forbidden outside "
        "repro.util.rng; thread a seeded Generator instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per global-RNG use in ``ctx``."""
        if ctx.module in _EXEMPT_MODULES:
            return
        stdlib_aliases, from_random = self._random_imports(ctx.tree)
        numpy_aliases = self._numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if not chain:
                continue
            if chain[0] in stdlib_aliases and len(chain) > 1:
                yield ctx.finding(
                    self,
                    node,
                    f"call to stdlib random ({'.'.join(chain)}); "
                    "use repro.util.rng.ensure_rng/spawn_rngs instead",
                )
            elif len(chain) == 1 and chain[0] in from_random:
                yield ctx.finding(
                    self,
                    node,
                    f"call to stdlib random.{chain[0]} (imported by name); "
                    "use repro.util.rng.ensure_rng/spawn_rngs instead",
                )
            elif (
                len(chain) >= 3
                and chain[0] in numpy_aliases
                and chain[1] == "random"
                and chain[2] not in _NUMPY_TYPE_NAMES
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"direct numpy.random use ({'.'.join(chain)}); "
                    "coerce seeds via repro.util.rng.ensure_rng",
                )

    def check_project(self, analysis: "FlowAnalysis") -> Iterator[Finding]:
        """Flag protocol functions transitively reaching global RNG state.

        The local pass already flags every direct global-RNG call in
        any linted file; this pass adds the protocol *frontier* — a
        protocol function whose chain to the global draw runs entirely
        through non-protocol helpers, which no per-file view can see.
        """
        for fn, chain in analysis.protocol_frontier("global-rng"):
            ctx = analysis.context_for(fn.rel_path)
            if ctx is None:
                continue
            yield ctx.finding(
                self,
                fn.node,
                f"protocol function '{fn.qname}' transitively reaches "
                "process-global randomness: "
                f"{chain.render(analysis.site_path(chain.site))}; thread a "
                "seeded Generator (repro.util.rng.ensure_rng/spawn_rngs)",
            )

    @staticmethod
    def _random_imports(tree: ast.Module) -> tuple[set[str], set[str]]:
        """(aliases of the random module, names imported from it)."""
        aliases: set[str] = set()
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return aliases, names

    @staticmethod
    def _numpy_aliases(tree: ast.Module) -> set[str]:
        """Local aliases of the numpy top-level module."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        aliases.add(alias.asname or "numpy")
        return aliases
