"""Rule ``exception-hygiene``: no bare or blind exception handlers.

A load-balancing round that swallows an exception mid-phase leaves the
ring in a half-mutated state — assignments moved but loads not
re-homed, a report claiming transfers that never executed.  The repo's
error taxonomy (:mod:`repro.exceptions`) exists precisely so callers
can catch *specific* failures; handlers that catch everything defeat
it and hide conservation bugs.

Flagged everywhere in ``src/repro``:

* ``except:`` with no exception type (also traps ``KeyboardInterrupt``
  and ``SystemExit``);
* ``except Exception`` / ``except BaseException`` (bare or in a tuple)
  whose body neither re-raises (``raise``) nor stores the exception for
  structured handling (binds it with ``as`` and *uses* the name).

A blind handler that re-raises is fine: catch-log-reraise is the one
legitimate use of ``except Exception``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Severity
from repro.lint.rules.base import Rule, dotted_name, walk_body

_BLIND_TYPES = frozenset({"Exception", "BaseException"})


def _names_blind_type(node: ast.expr | None) -> bool:
    """Whether an ``except`` clause type includes Exception/BaseException."""
    if node is None:
        return True  # bare except
    if isinstance(node, ast.Tuple):
        return any(_names_blind_type(elt) for elt in node.elts)
    chain = dotted_name(node)
    return bool(chain) and chain[-1] in _BLIND_TYPES


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises (``raise`` or ``raise X``)."""
    for node in walk_body(handler.body):
        if isinstance(node, ast.Raise):
            return True
    return False


def _uses_bound_name(handler: ast.ExceptHandler) -> bool:
    """Whether the handler binds the exception and reads the name."""
    if handler.name is None:
        return False
    for node in walk_body(handler.body):
        if isinstance(node, ast.Name) and node.id == handler.name:
            return True
    return False


class ExceptionHygieneRule(Rule):
    """Forbid bare ``except:`` and non-re-raising blind handlers."""

    name = "exception-hygiene"
    severity = Severity.ERROR
    description = (
        "bare except: is forbidden; except Exception must re-raise or "
        "handle the bound exception (catch specific ReproError subclasses)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per bare/blind exception handler in ``ctx``."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare except: traps KeyboardInterrupt/SystemExit; name "
                    "the exception type (see repro.exceptions)",
                )
            elif _names_blind_type(node.type):
                if _reraises(node) or _uses_bound_name(node):
                    continue
                yield ctx.finding(
                    self,
                    node,
                    "except Exception without re-raise silently swallows "
                    "failures; catch a specific ReproError subclass or "
                    "re-raise after logging",
                )
