"""The AST-based rule engine behind :mod:`repro.lint`.

The engine parses each Python source file once into an :class:`ast.AST`,
wraps it in a :class:`FileContext` (source text, dotted module name,
package classification) and hands the context to every registered
:class:`Rule`.  Rules yield :class:`Finding` objects; the engine then
applies two suppression layers:

* **inline pragmas** — a ``# lint: disable=rule-name[,rule-name...]``
  comment on the offending line silences those rules for that line
  (for the rare case where a violation is intentional and reviewed);
* **the baseline** — a committed JSON file of finding fingerprints
  (:meth:`Finding.fingerprint`, deliberately line-number-independent so
  unrelated edits do not invalidate it) that grandfathers pre-existing
  violations.  New code must be clean; baselined debt is visible in one
  reviewable file.

Determinism contract: findings are reported sorted by
``(path, line, column, rule)`` and file discovery sorts directory
walks, so two runs over the same tree always produce identical output —
the lint subsystem holds itself to the invariant it enforces.
"""

from __future__ import annotations

import ast
import enum
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.exceptions import LintError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.rules.base import Rule

#: Sub-packages of ``repro`` that implement the balancing *protocol*:
#: code whose behaviour must be a pure function of the scenario seed.
#: Determinism and conservation rules apply only here.
PROTOCOL_PACKAGES = (
    "core",
    "dht",
    "ktree",
    "sim",
    "faults",
    "adversary",
    "parallel",
    "membership",
    "recovery",
)

#: Sub-packages whose public surface is operator-facing API and must be
#: fully documented (the docstring-coverage rule's scope).
DOCUMENTED_PACKAGES = (
    "obs",
    "lint",
    "faults",
    "adversary",
    "parallel",
    "membership",
    "recovery",
)

_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+)")


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break the build; ``WARNING`` findings are
    reported (and baselined) but both currently affect the exit code —
    the split exists so a future ``--errors-only`` gate can relax
    warnings without touching the rules.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # repository-relative POSIX path
    line: int  # 1-based
    column: int  # 0-based (as reported by ast)
    severity: Severity
    message: str

    def fingerprint(self) -> str:
        """Stable identity of this finding for the baseline.

        Deliberately excludes the line/column so that unrelated edits
        above a grandfathered violation do not invalidate the baseline.
        Two identical violations in one file share a fingerprint, which
        is the conservative direction (fixing one un-suppresses none).
        """
        digest = hashlib.sha256(
            f"{self.rule}\x00{self.path}\x00{self.message}".encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (the ``--format jsonl`` payload)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity.value,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def format_text(self) -> str:
        """The human-readable one-line rendering."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity.value} [{self.rule}] {self.message}"
        )


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path  # absolute path on disk
    rel_path: str  # repository-relative POSIX path (finding identity)
    source: str
    tree: ast.Module
    module: str  # dotted module name, e.g. "repro.core.vsa"
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    # -- package classification -----------------------------------------
    @property
    def package_parts(self) -> tuple[str, ...]:
        """The dotted module name split into parts."""
        return tuple(self.module.split("."))

    def in_package(self, *names: str) -> bool:
        """Whether this module lives under ``repro.<name>`` for any name."""
        parts = self.package_parts
        return len(parts) >= 2 and parts[0] == "repro" and parts[1] in names

    @property
    def is_protocol(self) -> bool:
        """Whether this module is part of the balancing protocol."""
        return self.in_package(*PROTOCOL_PACKAGES)

    @property
    def is_documented_api(self) -> bool:
        """Whether this module must have full docstring coverage."""
        return self.in_package(*DOCUMENTED_PACKAGES)

    # -- helpers for rules ------------------------------------------------
    def finding(
        self,
        rule: "Rule",
        node: ast.AST | None,
        message: str,
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` (module level if None)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        column = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule=rule.name,
            path=self.rel_path,
            line=line,
            column=column,
            severity=rule.severity,
            message=message,
        )

    def disabled_rules_on_line(self, line: int) -> frozenset[str]:
        """Rules disabled by an inline pragma on physical line ``line``."""
        if not 1 <= line <= len(self.lines):
            return frozenset()
        match = _PRAGMA_RE.search(self.lines[line - 1])
        if match is None:
            return frozenset()
        return frozenset(
            name.strip() for name in match.group(1).split(",") if name.strip()
        )


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class Baseline:
    """A committed set of grandfathered finding fingerprints.

    The on-disk format is JSON: a version stamp plus one entry per
    fingerprint carrying the rule/path/message for human review — the
    engine only matches on the fingerprint, the rest documents *what*
    was grandfathered so the file reads as a debt register.
    """

    VERSION = 1

    def __init__(self, entries: dict[str, dict[str, str]] | None = None) -> None:
        """Wrap a fingerprint -> {rule, path, message} mapping."""
        self.entries: dict[str, dict[str, str]] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline grandfathering exactly ``findings``."""
        entries: dict[str, dict[str, str]] = {}
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            entries[f.fingerprint()] = {
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
            }
        return cls(entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; raises :class:`LintError` on bad input."""
        p = Path(path)
        try:
            data = json.loads(p.read_text())
        except FileNotFoundError:
            raise LintError(f"baseline file not found: {p}") from None
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline file {p} is not valid JSON: {exc}") from None
        if not isinstance(data, dict) or data.get("version") != cls.VERSION:
            raise LintError(
                f"baseline file {p} has unsupported format "
                f"(expected version {cls.VERSION})"
            )
        entries = data.get("fingerprints", {})
        if not isinstance(entries, dict):
            raise LintError(f"baseline file {p}: 'fingerprints' must be an object")
        return cls(entries)

    def save(self, path: str | Path) -> Path:
        """Write the baseline as deterministic, review-friendly JSON."""
        p = Path(path)
        payload = {
            "version": self.VERSION,
            "fingerprints": {
                fp: self.entries[fp] for fp in sorted(self.entries)
            },
        }
        p.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return p


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class LintEngine:
    """Runs a set of rules over Python source trees.

    Parameters
    ----------
    rules:
        Rules to run; defaults to the full registry of
        :data:`repro.lint.rules.ALL_RULES`.
    baseline:
        Optional :class:`Baseline` of grandfathered fingerprints;
        matching findings are suppressed.
    """

    def __init__(
        self,
        rules: Sequence["Rule"] | None = None,
        baseline: Baseline | None = None,
        flow: bool = True,
    ) -> None:
        """Configure the engine; see the class docstring for parameters.

        ``flow=False`` skips the interprocedural pass (call graph +
        effect inference) — per-file rules only.  Useful for fast
        single-rule runs in tests.
        """
        if rules is None:
            from repro.lint.rules import ALL_RULES

            rules = ALL_RULES
        names = [r.name for r in rules]
        if len(names) != len(set(names)):
            raise LintError(f"duplicate rule names in {sorted(names)}")
        self.rules: tuple["Rule", ...] = tuple(rules)
        self.baseline = baseline
        self.flow = flow
        #: Findings suppressed by the baseline during the last run.
        self.suppressed: list[Finding] = []
        #: The FlowAnalysis built by the last lint_paths run (flow=True).
        self.analysis: Any = None

    # -- file discovery ---------------------------------------------------
    @staticmethod
    def collect_files(paths: Sequence[str | Path]) -> list[Path]:
        """All ``.py`` files under ``paths``, sorted for determinism."""
        out: set[Path] = set()
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                out.update(p.rglob("*.py"))
            elif p.is_file() and p.suffix == ".py":
                out.add(p)
            elif not p.exists():
                raise LintError(f"no such file or directory: {p}")
        return sorted(out)

    @staticmethod
    def module_name(path: Path) -> str:
        """Dotted module name of ``path``, anchored at the ``repro`` dir.

        Files outside a ``repro`` package root (e.g. test fixtures) get
        a name derived from their trailing path parts, so package-scoped
        rules simply do not match them.
        """
        parts = list(path.with_suffix("").parts)
        if "repro" in parts:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
            parts = parts[anchor:]
        else:
            parts = parts[-1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1] or ["__init__"]
        return ".".join(parts)

    # -- linting ----------------------------------------------------------
    def parse_file(
        self, path: str | Path, root: str | Path | None = None
    ) -> FileContext:
        """Parse one source file into a :class:`FileContext`."""
        p = Path(path)
        base = Path(root) if root is not None else Path.cwd()
        try:
            rel = p.resolve().relative_to(base.resolve()).as_posix()
        except ValueError:
            rel = p.as_posix()
        source = p.read_text()
        try:
            tree = ast.parse(source, filename=str(p))
        except SyntaxError as exc:
            raise LintError(f"cannot parse {p}: {exc}") from None
        return FileContext(
            path=p,
            rel_path=rel,
            source=source,
            tree=tree,
            module=self.module_name(p),
        )

    def lint_file(self, path: str | Path, root: str | Path | None = None) -> list[Finding]:
        """Run every *per-file* rule over one file; raw findings.

        Interprocedural (``check_project``) findings require the whole
        project and are only produced by :meth:`lint_paths`.
        """
        ctx = self.parse_file(path, root=root)
        findings: list[Finding] = []
        for rule in self.rules:
            for finding in rule.check(ctx):
                if rule.name in ctx.disabled_rules_on_line(finding.line):
                    continue
                findings.append(finding)
        return findings

    def lint_paths(self, paths: Sequence[str | Path], root: str | Path | None = None) -> list[Finding]:
        """Lint every file under ``paths``; returns suppression-filtered findings.

        Runs the per-file rules over each file, then (unless the engine
        was built with ``flow=False``) builds one
        :class:`~repro.lint.flow.analysis.FlowAnalysis` over all parsed
        contexts and runs every rule's ``check_project`` hook against
        it.  Baseline-suppressed findings are recorded on
        :attr:`suppressed` for reporting (``--show-suppressed``).
        """
        self.suppressed = []
        self.analysis = None
        findings: list[Finding] = []
        contexts = [
            self.parse_file(path, root=root)
            for path in self.collect_files(paths)
        ]
        for ctx in contexts:
            for rule in self.rules:
                for finding in rule.check(ctx):
                    if rule.name in ctx.disabled_rules_on_line(finding.line):
                        continue
                    self._route(finding, findings)
        if self.flow and contexts:
            # Imported here: repro.lint.flow imports this module at load.
            from repro.lint.flow.analysis import FlowAnalysis

            self.analysis = FlowAnalysis(contexts)
            by_rel = {ctx.rel_path: ctx for ctx in contexts}
            for rule in self.rules:
                for finding in rule.check_project(self.analysis):
                    ctx_for = by_rel.get(finding.path)
                    if ctx_for is not None and rule.name in (
                        ctx_for.disabled_rules_on_line(finding.line)
                    ):
                        continue
                    self._route(finding, findings)
        findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        self.suppressed.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        return findings

    def _route(self, finding: Finding, findings: list[Finding]) -> None:
        """File a finding under suppressed-or-reported per the baseline."""
        if self.baseline is not None and finding in self.baseline:
            self.suppressed.append(finding)
        else:
            findings.append(finding)
