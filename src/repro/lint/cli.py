"""Command-line front end for :mod:`repro.lint`.

Usage (see ``docs/static_analysis.md`` for the workflow)::

    python -m repro.lint [paths ...] [options]

Options:

``--baseline FILE``
    Suppress findings fingerprinted in ``FILE`` (the committed debt
    register, usually ``lint-baseline.json``).
``--write-baseline FILE``
    Instead of failing, write every current finding into ``FILE`` and
    exit 0.  Used once to grandfather existing debt; re-running the
    linter with ``--baseline FILE`` is then clean.
``--format {text,jsonl}``
    Output format.  ``jsonl`` emits one JSON object per finding —
    machine-readable, stable keys (see :meth:`Finding.to_dict`).
``--out FILE``
    With ``--format jsonl``, write the stream to ``FILE`` through
    :class:`repro.obs.sinks.JSONLSink` instead of stdout.
``--show-suppressed``
    Also print findings that the baseline suppressed (marked).
``--list-rules``
    Print the rule catalog and exit.

Exit codes: **0** clean, **1** findings reported, **2** usage or I/O
error (bad path, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.exceptions import LintError
from repro.lint.engine import Baseline, Finding, LintEngine
from repro.lint.rules import ALL_RULES

#: Exit statuses (kept as names so tests read well).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Domain-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a new baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "jsonl"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="with --format jsonl, write findings to FILE via JSONLSink",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print baseline-suppressed findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> int:
    width = max(len(rule.name) for rule in ALL_RULES)
    for rule in ALL_RULES:
        print(f"{rule.name:<{width}}  [{rule.severity.value}]  {rule.description}")
    return EXIT_CLEAN


def _emit_jsonl(findings: Sequence[Finding], out: str | None) -> None:
    if out is not None:
        from repro.obs.sinks import JSONLSink

        sink = JSONLSink(out)
        try:
            for finding in findings:
                # JSONLSink duck-types on to_dict(); Finding provides it.
                sink.emit(finding)  # type: ignore[arg-type]
        finally:
            sink.close()
    else:
        for finding in findings:
            print(json.dumps(finding.to_dict(), sort_keys=True))


def _emit_text(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding],
    show_suppressed: bool,
) -> None:
    for finding in findings:
        print(finding.format_text())
    if show_suppressed:
        for finding in suppressed:
            print(f"{finding.format_text()} (baseline-suppressed)")
    n, s = len(findings), len(suppressed)
    tail = f" ({s} baseline-suppressed)" if s else ""
    print(f"repro.lint: {n} finding{'s' if n != 1 else ''}{tail}")


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.out is not None and args.fmt != "jsonl":
        parser.error("--out requires --format jsonl")
    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
        engine = LintEngine(baseline=baseline)
        findings = engine.lint_paths(args.paths)
    except LintError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.write_baseline:
        all_findings = [*findings, *engine.suppressed]
        path = Baseline.from_findings(all_findings).save(args.write_baseline)
        print(f"repro.lint: wrote {len(all_findings)} fingerprints to {path}")
        return EXIT_CLEAN
    if args.fmt == "jsonl":
        _emit_jsonl(findings, args.out)
    else:
        _emit_text(findings, engine.suppressed, args.show_suppressed)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
