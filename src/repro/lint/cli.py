"""Command-line front end for :mod:`repro.lint`.

Usage (see ``docs/static_analysis.md`` for the workflow)::

    python -m repro.lint [paths ...] [options]

Options:

``--baseline FILE``
    Suppress findings fingerprinted in ``FILE`` (the committed debt
    register, usually ``lint-baseline.json``).
``--write-baseline FILE``
    Instead of failing, write every current finding into ``FILE`` and
    exit 0.  Used once to grandfather existing debt; re-running the
    linter with ``--baseline FILE`` is then clean.
``--format {text,jsonl}``
    Output format.  ``jsonl`` emits one JSON object per finding —
    machine-readable, stable keys (see :meth:`Finding.to_dict`).
``--out FILE``
    With ``--format jsonl``, write the stream to ``FILE`` through
    :class:`repro.obs.sinks.JSONLSink` instead of stdout.
``--show-suppressed``
    Also print findings that the baseline suppressed (marked).
``--list-rules``
    Print the rule catalog and exit.
``--profile {default,relaxed}``
    ``relaxed`` drops the documentation-hygiene rules
    (``docstring-coverage``, ``obs-span-coverage``) while keeping every
    determinism rule — the profile ``scripts/`` and ``benchmarks/`` are
    linted under, so bench harnesses cannot silently use unseeded RNG
    without holding them to library documentation standards.
``--effects-out FILE``
    Write the flow pass's effect summary (one entry per function with
    a non-empty transitive effect set) to ``FILE`` as JSON.
``--effects-check FILE``
    Compare the current effect summary against a committed baseline
    (``effects-baseline.json``); any drift is reported and exits 1.
    Regenerate after an intentional change with ``--effects-out FILE``.
``--callgraph FILE``
    Dump the resolved call graph: Graphviz DOT when ``FILE`` ends in
    ``.dot``, otherwise JSONL via :class:`repro.obs.sinks.JSONLSink`.
``--no-flow``
    Skip the interprocedural pass entirely (per-file rules only).

Exit codes: **0** clean, **1** findings reported (or effect-summary
drift), **2** usage or I/O error (bad path, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.exceptions import LintError
from repro.lint.engine import Baseline, Finding, LintEngine
from repro.lint.rules import ALL_RULES

#: Exit statuses (kept as names so tests read well).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Rules the relaxed profile drops (documentation hygiene only —
#: determinism rules are never profile-gated).
RELAXED_EXCLUDED_RULES = frozenset({"docstring-coverage", "obs-span-coverage"})


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Domain-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as a new baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "jsonl"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="with --format jsonl, write findings to FILE via JSONLSink",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print baseline-suppressed findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--profile",
        choices=("default", "relaxed"),
        default="default",
        help="rule profile: relaxed drops documentation-hygiene rules "
        "(for scripts/ and benchmarks/)",
    )
    parser.add_argument(
        "--effects-out",
        metavar="FILE",
        help="write the flow pass's effect summary to FILE as JSON",
    )
    parser.add_argument(
        "--effects-check",
        metavar="FILE",
        help="fail (exit 1) if the effect summary drifted from FILE",
    )
    parser.add_argument(
        "--callgraph",
        metavar="FILE",
        help="dump the resolved call graph (DOT for .dot, else JSONL)",
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the interprocedural flow pass (per-file rules only)",
    )
    return parser


def _list_rules() -> int:
    width = max(len(rule.name) for rule in ALL_RULES)
    for rule in ALL_RULES:
        print(f"{rule.name:<{width}}  [{rule.severity.value}]  {rule.description}")
    return EXIT_CLEAN


def _emit_jsonl(findings: Sequence[Finding], out: str | None) -> None:
    if out is not None:
        from repro.obs.sinks import JSONLSink

        sink = JSONLSink(out)
        try:
            for finding in findings:
                # JSONLSink duck-types on to_dict(); Finding provides it.
                sink.emit(finding)  # type: ignore[arg-type]
        finally:
            sink.close()
    else:
        for finding in findings:
            print(json.dumps(finding.to_dict(), sort_keys=True))


def _emit_text(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding],
    show_suppressed: bool,
) -> None:
    for finding in findings:
        print(finding.format_text())
    if show_suppressed:
        for finding in suppressed:
            print(f"{finding.format_text()} (baseline-suppressed)")
    n, s = len(findings), len(suppressed)
    tail = f" ({s} baseline-suppressed)" if s else ""
    print(f"repro.lint: {n} finding{'s' if n != 1 else ''}{tail}")


def _flow_artifacts(engine: LintEngine, args: argparse.Namespace) -> list[str]:
    """Write requested flow artifacts; return effect-drift lines (if any).

    Raises :class:`LintError` when artifacts were requested but the
    flow analysis is unavailable (e.g. no files were linted) or the
    drift baseline is unreadable.
    """
    if not (args.effects_out or args.effects_check or args.callgraph):
        return []
    if engine.analysis is None:
        raise LintError("flow analysis unavailable (no files linted?)")
    from repro.lint.flow import artifacts

    if args.effects_out:
        path = artifacts.write_effects(engine.analysis, args.effects_out)
        print(f"repro.lint: wrote effect summary to {path}")
    if args.callgraph:
        path = artifacts.write_callgraph(engine.analysis, args.callgraph)
        print(f"repro.lint: wrote call graph to {path}")
    if args.effects_check:
        try:
            return artifacts.effects_drift(engine.analysis, args.effects_check)
        except FileNotFoundError:
            raise LintError(
                f"effects baseline not found: {args.effects_check}"
            ) from None
        except json.JSONDecodeError as exc:
            raise LintError(
                f"effects baseline {args.effects_check} is not valid JSON: "
                f"{exc}"
            ) from None
    return []


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.out is not None and args.fmt != "jsonl":
        parser.error("--out requires --format jsonl")
    flow_flags = (args.effects_out, args.effects_check, args.callgraph)
    if args.no_flow and any(flow_flags):
        parser.error(
            "--effects-out/--effects-check/--callgraph require the flow pass"
        )
    rules = ALL_RULES
    if args.profile == "relaxed":
        rules = tuple(
            r for r in ALL_RULES if r.name not in RELAXED_EXCLUDED_RULES
        )
    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
        engine = LintEngine(
            rules=rules, baseline=baseline, flow=not args.no_flow
        )
        findings = engine.lint_paths(args.paths)
    except LintError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        drift_lines = _flow_artifacts(engine, args)
    except LintError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.write_baseline:
        all_findings = [*findings, *engine.suppressed]
        path = Baseline.from_findings(all_findings).save(args.write_baseline)
        print(f"repro.lint: wrote {len(all_findings)} fingerprints to {path}")
        return EXIT_CLEAN
    if args.fmt == "jsonl":
        _emit_jsonl(findings, args.out)
    else:
        _emit_text(findings, engine.suppressed, args.show_suppressed)
    for line in drift_lines:
        print(f"repro.lint: effects drift: {line}")
    if drift_lines:
        print(
            "repro.lint: effect summary drifted from baseline; review and "
            "regenerate with --effects-out <baseline-file>"
        )
    return EXIT_FINDINGS if (findings or drift_lines) else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
