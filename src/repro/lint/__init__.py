"""Domain-aware static analysis for the load-balancing reproduction.

The linter encodes the repository's three non-negotiable invariants as
AST rules and runs them over the source tree:

* **determinism** — no unseeded RNG, no wall-clock reads in protocol
  code, no order-sensitive iteration over sets, no exact float
  equality on load quantities;
* **conservation** — every function that moves virtual-server load
  must call a conservation/invariant guard;
* **observability** — core phase entry points must emit tracer spans,
  and the operator-facing packages must be fully documented.

Run it as ``python -m repro.lint [paths] [--baseline FILE]``; see
``docs/static_analysis.md`` for the rule catalog and the baseline
workflow.  Programmatic use::

    from repro.lint import LintEngine, Baseline

    engine = LintEngine(baseline=Baseline.load("lint-baseline.json"))
    findings = engine.lint_paths(["src/repro"])
"""

from __future__ import annotations

from repro.lint.engine import (
    DOCUMENTED_PACKAGES,
    PROTOCOL_PACKAGES,
    Baseline,
    FileContext,
    Finding,
    LintEngine,
    Severity,
)
from repro.lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "DOCUMENTED_PACKAGES",
    "FileContext",
    "Finding",
    "LintEngine",
    "PROTOCOL_PACKAGES",
    "Rule",
    "Severity",
]
