"""Machine-readable artifacts of the flow analysis.

Two consumers exist today:

* the **effects summary** (``--effects-out`` / ``--effects-check``) — a
  deterministic JSON document mapping every function with a non-empty
  transitive effect set to its sorted lattice atoms, plus per-atom
  totals.  ``scripts/verify.sh`` diffs a fresh summary against the
  committed ``effects-baseline.json``: a new effectful function (or a
  new atom on an old one) fails the build until the baseline is
  regenerated and reviewed, the same workflow as ``lint-baseline.json``;
* the **call-graph dump** (``--callgraph FILE``) — ``.dot`` renders a
  Graphviz digraph (ref edges dashed, decorator edges dotted), any
  other suffix streams node and edge records through
  :class:`repro.obs.sinks.JSONLSink`.

Only *public lattice atoms* appear in artifacts; the internal site
refinements (``global-rng``, ``ambient-rng``, ``unbounded-loop``) are
rule implementation detail and would churn the baseline without
informing a reader.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.lint.flow.analysis import FlowAnalysis
from repro.lint.flow.effects import EFFECT_ATOMS

#: Version stamp of the effects-summary JSON schema.
EFFECTS_SCHEMA_VERSION = 1


def effect_summary(analysis: FlowAnalysis) -> dict[str, Any]:
    """The effects-summary document for ``analysis``.

    Functions whose transitive effect set is empty are omitted — they
    are the (large, uninteresting) effect-closed majority, and leaving
    them out keeps baseline diffs focused on actual effect changes.
    """
    functions: dict[str, list[str]] = {}
    totals = {atom: 0 for atom in EFFECT_ATOMS}
    for qname in sorted(analysis.project.functions):
        atoms = sorted(analysis.effects_of(qname))
        if not atoms:
            continue
        functions[qname] = atoms
        for atom in atoms:
            totals[atom] += 1
    return {
        "version": EFFECTS_SCHEMA_VERSION,
        "functions": functions,
        "totals": totals,
    }


def write_effects(analysis: FlowAnalysis, path: str | Path) -> Path:
    """Write the effects summary to ``path`` as deterministic JSON."""
    p = Path(path)
    p.write_text(
        json.dumps(effect_summary(analysis), indent=2, sort_keys=True) + "\n"
    )
    return p


def effects_drift(
    analysis: FlowAnalysis, baseline_path: str | Path
) -> list[str]:
    """Human-readable drift lines vs a committed effects baseline.

    Empty means no drift.  Reported per function: appeared, vanished,
    or changed atom set — each line actionable on its own.
    """
    current = effect_summary(analysis)["functions"]
    data = json.loads(Path(baseline_path).read_text())
    recorded = data.get("functions", {})
    lines: list[str] = []
    for qname in sorted(set(current) | set(recorded)):
        now = current.get(qname)
        then = recorded.get(qname)
        if now == then:
            continue
        if then is None:
            lines.append(f"new effectful function {qname}: {', '.join(now)}")
        elif now is None:
            lines.append(
                f"function {qname} no longer effectful (was: {', '.join(then)})"
            )
        else:
            lines.append(
                f"effects of {qname} changed: "
                f"{', '.join(then)} -> {', '.join(now)}"
            )
    return lines


class _GraphRecord:
    """A call-graph JSONL record (duck-typed for ``JSONLSink.emit``)."""

    def __init__(self, payload: dict[str, Any]) -> None:
        self.payload = payload

    def to_dict(self) -> dict[str, Any]:
        """The JSON payload (the sink serialises exactly this)."""
        return self.payload


def _graph_records(analysis: FlowAnalysis) -> list[_GraphRecord]:
    """Node records then edge records, in deterministic order."""
    records: list[_GraphRecord] = []
    for qname in sorted(analysis.project.functions):
        fn = analysis.project.functions[qname]
        records.append(
            _GraphRecord(
                {
                    "record": "node",
                    "qname": qname,
                    "path": fn.rel_path,
                    "line": fn.line,
                    "protocol": fn.is_protocol,
                    "effects": sorted(analysis.effects_of(qname)),
                }
            )
        )
    for caller, site in analysis.project.edges():
        records.append(
            _GraphRecord(
                {
                    "record": "edge",
                    "caller": caller,
                    "callee": site.callee,
                    "kind": site.kind,
                    "line": site.line,
                }
            )
        )
    return records


def render_callgraph_dot(analysis: FlowAnalysis) -> str:
    """The call graph as Graphviz DOT source.

    Effectful nodes carry their atom set in the label; ref edges are
    dashed and decorator edges dotted so indirection is visible.
    """
    out: list[str] = ["digraph callgraph {", "  rankdir=LR;"]
    for qname in sorted(analysis.project.functions):
        atoms = sorted(analysis.effects_of(qname))
        label = qname if not atoms else f"{qname}\\n[{', '.join(atoms)}]"
        shape = (
            "box" if analysis.project.functions[qname].is_protocol else "ellipse"
        )
        out.append(f'  "{qname}" [label="{label}", shape={shape}];')
    styles = {"call": "solid", "ref": "dashed", "decorator": "dotted"}
    for caller, site in analysis.project.edges():
        style = styles.get(site.kind, "solid")
        out.append(f'  "{caller}" -> "{site.callee}" [style={style}];')
    out.append("}")
    return "\n".join(out) + "\n"


def write_callgraph(analysis: FlowAnalysis, path: str | Path) -> Path:
    """Dump the call graph to ``path`` (DOT for ``.dot``, else JSONL)."""
    p = Path(path)
    if p.suffix == ".dot":
        p.write_text(render_callgraph_dot(analysis))
        return p
    from repro.obs.sinks import JSONLSink

    sink = JSONLSink(p)
    try:
        for record in _graph_records(analysis):
            sink.emit(record)  # type: ignore[arg-type]
    finally:
        sink.close()
    return p
