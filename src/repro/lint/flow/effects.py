"""Direct effect scanning and fixpoint propagation over the call graph.

Each function gets a set of *site kinds*: the six public lattice atoms
(:data:`EFFECT_ATOMS`) plus three internal refinements that the
interprocedural rules key on:

* ``global-rng`` — a draw from process-global randomness (stdlib
  ``random`` or the ``numpy.random`` module-level state), refining
  ``rng-consume``.  Forbidden everywhere outside ``repro.util.rng``.
* ``ambient-rng`` — a draw from a Generator the function did not
  receive as a parameter or spawn locally (module-global, closure, or
  instance-attribute stream), refining ``rng-consume``.  Legal in
  ordinary code, forbidden in callables crossing a ``WorkerPool``
  boundary, where ambient streams diverge between process and inline
  modes.
* ``unbounded-loop`` — a ``while`` with a truthy-constant test (the
  ``bounded-retry`` reachability target; not part of the public
  lattice because a loop is control flow, not an environment effect).

Direct sites come from a single AST walk per function (reusing the
import-detection helpers of the local rules, so local and transitive
verdicts can never disagree about what counts as a clock or a global
RNG).  Propagation condenses the call graph's strongly connected
components (Tarjan) and folds callee kinds into callers in reverse
topological order — one linear pass, no iteration to fixpoint needed
after condensation.

Barrier modules — ``repro.obs.*`` and ``repro.util.rng`` — are pinned
to the empty effect set: they are the sanctioned *owners* of clocks,
sinks and Generator construction, and propagating their internals
would (correctly but uselessly) taint every instrumented function in
the tree.  The pin is the analysis's one deliberate unsoundness and is
documented in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.lint.rules.base import dotted_name
from repro.lint.rules.rng import NoUnseededRngRule, _NUMPY_TYPE_NAMES
from repro.lint.rules.wallclock import _CLOCK_FUNCS, _DATETIME_FUNCS, NoWallclockRule

from repro.lint.flow.callgraph import FunctionInfo, Project

#: The public effect lattice, sorted.  A function's transitive effect
#: set is a subset of these atoms; the empty set means "effect-closed".
EFFECT_ATOMS: tuple[str, ...] = (
    "fork",
    "global-mutation",
    "io",
    "rng-consume",
    "unordered-iteration",
    "wall-clock",
)

#: Every propagated site kind: the lattice plus internal refinements.
SITE_KINDS: tuple[str, ...] = (
    *EFFECT_ATOMS,
    "ambient-rng",
    "global-rng",
    "unbounded-loop",
)

#: Kinds that refine ``rng-consume`` (a site of these carries both).
_RNG_REFINEMENTS = frozenset({"ambient-rng", "global-rng"})

#: Generator origins whose draws count as *ambient* (the stream is not
#: part of the function's explicit inputs).
AMBIENT_ORIGINS = frozenset({"module-global", "closure", "attribute"})

#: numpy Generator methods that consume stream state when called on a
#: known Generator binding.  Construction/plumbing (``spawn``,
#: ``bit_generator``) deliberately excluded.
DRAW_METHODS = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "f",
        "gamma",
        "geometric",
        "gumbel",
        "integers",
        "laplace",
        "logistic",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "pareto",
        "permutation",
        "permuted",
        "poisson",
        "random",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
    }
)

#: Terminal attribute names whose call performs filesystem I/O.
#: ``write``/``read`` are deliberately excluded (too generic — domain
#: objects legitimately define them); ``pathlib`` verbs are specific.
_IO_METHODS = frozenset(
    {
        "mkdir",
        "open",
        "read_bytes",
        "read_text",
        "rename",
        "replace",
        "rmdir",
        "touch",
        "unlink",
        "write_bytes",
        "write_text",
    }
)

#: Bare-name builtins that perform I/O.
_IO_BUILTINS = frozenset({"open", "print", "input"})

#: ``os.`` functions that fork the process.
_OS_FORK_FUNCS = frozenset({"fork", "forkpty", "posix_spawn", "system"})

#: Modules whose invocation implies process creation.
_FORK_MODULE_HEADS = frozenset({"multiprocessing", "subprocess"})

#: Module prefixes pinned to the empty effect set (see module docstring).
BARRIER_MODULE_PREFIXES: tuple[str, ...] = ("repro.obs",)
BARRIER_MODULES: frozenset[str] = frozenset({"repro.util.rng"})


def is_barrier_module(module: str) -> bool:
    """Whether ``module`` is an effect barrier (sanctioned effect owner)."""
    if module in BARRIER_MODULES:
        return True
    return any(
        module == p or module.startswith(p + ".")
        for p in BARRIER_MODULE_PREFIXES
    )


@dataclass(frozen=True, slots=True)
class EffectSite:
    """One concrete effect occurrence inside a function body."""

    qname: str  # owning function
    kind: str  # one of SITE_KINDS
    line: int  # 1-based source line
    detail: str  # human-readable description for findings

    @property
    def kinds(self) -> frozenset[str]:
        """The propagated kind set (refinements imply ``rng-consume``)."""
        if self.kind in _RNG_REFINEMENTS:
            return frozenset({self.kind, "rng-consume"})
        return frozenset({self.kind})


class _ModuleImports:
    """Per-module import facts shared by every function scan in it."""

    def __init__(self, tree: ast.Module) -> None:
        self.time_aliases, self.from_time = NoWallclockRule._time_imports(tree)
        self.random_aliases, self.from_random = (
            NoUnseededRngRule._random_imports(tree)
        )
        self.numpy_aliases = NoUnseededRngRule._numpy_aliases(tree)


def direct_sites(project: Project) -> dict[str, list[EffectSite]]:
    """Scan every project function for its *direct* effect sites.

    Barrier-module functions come back with an empty site list; every
    other function gets its sites in source order.
    """
    imports_by_module: dict[str, _ModuleImports] = {}
    out: dict[str, list[EffectSite]] = {}
    for qname in sorted(project.functions):
        fn = project.functions[qname]
        if is_barrier_module(fn.module):
            out[qname] = []
            continue
        imports = imports_by_module.get(fn.module)
        if imports is None:
            imports = _ModuleImports(project.binders[fn.module].ctx.tree)
            imports_by_module[fn.module] = imports
        out[qname] = sorted(
            _scan_function(fn, imports), key=lambda s: (s.line, s.kind)
        )
    return out


def _scan_function(
    fn: FunctionInfo, imports: _ModuleImports
) -> Iterator[EffectSite]:
    """Yield every direct effect site in one function's own scope."""
    for node in _own_scope(fn.node):
        if isinstance(node, ast.Global):
            yield EffectSite(
                qname=fn.qname,
                kind="global-mutation",
                line=node.lineno,
                detail=f"'global {', '.join(node.names)}' statement",
            )
        elif isinstance(node, ast.While) and _truthy_constant(node.test):
            yield EffectSite(
                qname=fn.qname,
                kind="unbounded-loop",
                line=node.lineno,
                detail="'while True' loop with no static bound",
            )
        elif isinstance(node, ast.Call):
            yield from _scan_call(fn, node, imports)


def _own_scope(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body without entering nested def/class scopes."""
    stack: list[ast.AST] = list(fn_node.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _truthy_constant(test: ast.expr) -> bool:
    """Whether a loop test is a constant that always evaluates true."""
    return isinstance(test, ast.Constant) and bool(test.value)


def _scan_call(
    fn: FunctionInfo, node: ast.Call, imports: _ModuleImports
) -> Iterator[EffectSite]:
    """Classify one call expression into zero or more effect sites."""
    chain = dotted_name(node.func)
    if not chain:
        return
    text = ".".join(chain)
    line = node.lineno
    # -- wall clock ------------------------------------------------------
    if (
        len(chain) == 2
        and chain[0] in imports.time_aliases
        and chain[1] in _CLOCK_FUNCS
    ) or (len(chain) == 1 and chain[0] in imports.from_time):
        yield EffectSite(fn.qname, "wall-clock", line, f"clock read {text}()")
        return
    if chain[-1] in _DATETIME_FUNCS and "datetime" in chain:
        yield EffectSite(
            fn.qname, "wall-clock", line, f"datetime clock read {text}()"
        )
        return
    # -- process-global RNG ---------------------------------------------
    if (chain[0] in imports.random_aliases and len(chain) > 1) or (
        len(chain) == 1 and chain[0] in imports.from_random
    ):
        yield EffectSite(
            fn.qname, "global-rng", line, f"stdlib random call {text}()"
        )
        return
    if (
        len(chain) >= 3
        and chain[0] in imports.numpy_aliases
        and chain[1] == "random"
        and chain[2] not in _NUMPY_TYPE_NAMES
    ):
        yield EffectSite(
            fn.qname, "global-rng", line, f"numpy.random global call {text}()"
        )
        return
    # -- Generator draws -------------------------------------------------
    if len(chain) >= 2 and chain[-1] in DRAW_METHODS:
        receiver = ".".join(chain[:-1])
        origin = fn.generator_origins.get(receiver)
        if origin is not None:
            kind = "ambient-rng" if origin in AMBIENT_ORIGINS else "rng-consume"
            yield EffectSite(
                fn.qname,
                kind,
                line,
                f"draw {text}() from {origin} Generator '{receiver}'",
            )
            return
    # -- I/O -------------------------------------------------------------
    if len(chain) == 1 and chain[0] in _IO_BUILTINS:
        yield EffectSite(fn.qname, "io", line, f"builtin {text}() call")
        return
    if len(chain) >= 2 and chain[-1] in _IO_METHODS:
        yield EffectSite(fn.qname, "io", line, f"filesystem call {text}()")
        return
    # -- fork ------------------------------------------------------------
    if len(chain) == 2 and chain[0] == "os" and chain[1] in _OS_FORK_FUNCS:
        yield EffectSite(fn.qname, "fork", line, f"process spawn {text}()")
        return
    if chain[-1] == "ProcessPoolExecutor" or (
        len(chain) >= 2 and chain[0] in _FORK_MODULE_HEADS
    ):
        yield EffectSite(fn.qname, "fork", line, f"process spawn {text}()")


def call_adjacency(project: Project) -> dict[str, tuple[str, ...]]:
    """Deterministic successor lists over non-barrier project functions.

    Ref and decorator edges are included alongside plain calls — a held
    reference is conservatively assumed invocable.  Edges into barrier
    modules are dropped (their effects are pinned empty anyway).
    """
    adjacency: dict[str, tuple[str, ...]] = {}
    for qname in sorted(project.functions):
        fn = project.functions[qname]
        if is_barrier_module(fn.module):
            adjacency[qname] = ()
            continue
        callees = {
            site.callee
            for site in fn.calls
            if site.callee in project.functions
            and not is_barrier_module(project.functions[site.callee].module)
        }
        adjacency[qname] = tuple(sorted(callees))
    return adjacency


def propagate(
    project: Project, direct: Mapping[str, Sequence[EffectSite]]
) -> dict[str, frozenset[str]]:
    """Transitive kind sets per function, via SCC condensation.

    Tarjan's algorithm emits strongly connected components in reverse
    topological order of the condensation (callees before callers), so
    a single pass that unions each component's direct kinds with its
    out-neighbour components' settled kinds reaches the fixpoint.
    Barrier-module functions are excluded from propagation entirely.
    """
    adjacency = call_adjacency(project)
    result: dict[str, frozenset[str]] = {}
    for component in _tarjan_sccs(adjacency):
        kinds: set[str] = set()
        for qname in component:
            for site in direct.get(qname, ()):
                kinds.update(site.kinds)
            for callee in adjacency[qname]:
                kinds.update(result.get(callee, frozenset()))
        settled = frozenset(kinds)
        for qname in component:
            result[qname] = settled
    return result


def _tarjan_sccs(
    adjacency: Mapping[str, tuple[str, ...]]
) -> Iterator[tuple[str, ...]]:
    """Tarjan's SCC algorithm, iterative, deterministic node order.

    Components are yielded in reverse topological order of the
    condensation: every out-neighbour of a component's members lies in
    an already-yielded component (or the component itself).
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    for root in sorted(adjacency):
        if root in index:
            continue
        # Iterative DFS: (node, iterator position into its adjacency).
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, pos = work.pop()
            if pos == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recursed = False
            neighbours = adjacency[node]
            for i in range(pos, len(neighbours)):
                succ = neighbours[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    recursed = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if recursed:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                yield tuple(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return
