"""Project-wide call-graph construction for the flow analysis.

The builder runs over every :class:`~repro.lint.engine.FileContext` in
one lint invocation and produces a :class:`Project`: per-module name
binders (imports, module-level defs, classes with attribute types) and
one :class:`FunctionInfo` per function/method — including nested
functions — holding that function's resolved outgoing call edges.

Resolution rules (documented in ``docs/static_analysis.md``):

* **imports** — ``import repro.core.vsa``, ``from repro.core import
  vsa``, ``from repro.core.vsa import run as r`` all bind local names
  to absolute dotted targets; a dotted call chain is resolved by
  substituting the binding and matching the longest known module
  prefix.
* **methods** — ``self.m()`` / ``cls.m()`` resolve through the
  enclosing class and its project-resolvable bases; ``obj.m()``
  resolves when ``obj``'s type is known from a parameter annotation, a
  local ``obj = ClassName(...)`` assignment, or a ``self.attr``
  assignment seen anywhere in the class (``IfExp`` branches are both
  tried, so ``self.pool = pool if pool else WorkerPool(...)`` types).
* **first-class references** — a name that resolves to a project
  function but appears outside call position (passed as an argument,
  stored, returned) contributes a conservative ``ref`` edge: the
  holder may invoke it.
* **decorators** — a decorated function gets an edge to each
  project-resolvable decorator, so wrapper effects propagate to every
  caller of the decorated name (decorated names themselves stay
  transparent call targets).

Anything else — external libraries, attribute calls on untyped
receivers, lambdas, callables smuggled through containers — resolves
to *no* edge.  That is an under-approximation by design; the trade-off
is catalogued in the docs.

The builder also records the two pieces of scope information the
stream/purity rules need: per-function generator bindings (which names
hold :class:`numpy.random.Generator` objects, and whether they came
from a per-shard ``spawn_rngs`` split) and every ``WorkerPool``
submission site (``*.map_ordered(fn, tasks)``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.lint.engine import FileContext
from repro.lint.rules.base import dotted_name

#: Callable names recognised as sanctioned Generator factories.  They
#: are matched by terminal name (not import origin): the codebase has a
#: single definition of each, and matching by name keeps the analysis
#: robust to ``from repro.util.rng import ensure_rng as rng_of`` style
#: aliasing at the cost of a theoretical false match.
GENERATOR_FACTORIES = frozenset({"ensure_rng", "default_rng"})

#: Callable names producing a *list* of per-shard generators.
GENERATOR_LIST_FACTORIES = frozenset({"spawn_rngs"})

#: Method name that marks a WorkerPool submission boundary.  Matched by
#: name with a typed-receiver fast path: ``repro.parallel.pool`` owns
#: the only ``map_ordered`` in the tree, and fixtures mimic it.
POOL_SUBMIT_METHODS = frozenset({"map_ordered"})


@dataclass(frozen=True, slots=True)
class CallSite:
    """One outgoing edge from a function.

    ``kind`` is ``"call"`` (direct invocation), ``"ref"`` (first-class
    reference — conservatively assumed callable by the holder) or
    ``"decorator"`` (wrapper applied to the owning function).
    """

    callee: str  # qualified name of the target function
    line: int  # 1-based line of the call/reference
    kind: str  # "call" | "ref" | "decorator"
    text: str  # the dotted source chain, for messages


@dataclass(frozen=True, slots=True)
class PoolSubmission:
    """One ``*.map_ordered(fn, tasks)`` site found in a function body."""

    caller: str  # qualified name of the submitting function
    callee: str | None  # resolved task function, None if unresolvable
    callee_text: str  # source text of the fn argument
    is_lambda: bool  # fn argument was a lambda expression
    line: int
    tasks: ast.expr | None  # the tasks argument expression, if present
    #: Origin of a shared (non-per-shard) Generator embedded in the
    #: tasks argument, or None when the tasks expression is stream-free
    #: or every embedded generator came from a ``spawn_rngs`` split.
    shared_stream_origin: str | None = None


@dataclass
class ClassInfo:
    """One project class: its methods, bases and inferred attribute types."""

    qname: str
    module: str
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qname
    base_chains: list[tuple[str, ...]] = field(default_factory=list)
    bases: list[str] = field(default_factory=list)  # resolved class qnames
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> token


@dataclass
class FunctionInfo:
    """One function/method and everything the effect pass needs of it.

    ``generator_origins`` maps dotted receiver names (``"gen"``,
    ``"self.rng"``) to how the Generator got there: ``"param"``
    (annotated parameter), ``"ensured"`` (local ``ensure_rng`` result),
    ``"spawned"`` (element of a per-shard ``spawn_rngs`` split),
    ``"attribute"`` (instance state), ``"module-global"`` or
    ``"closure"``.  ``generator_carriers`` maps names whose *value
    embeds* a non-spawned generator object (e.g. a task list built from
    a shared stream) to the embedded generator's origin.
    """

    qname: str
    module: str
    rel_path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None  # owning class qname, if a method
    params: tuple[str, ...]
    is_protocol: bool
    calls: list[CallSite] = field(default_factory=list)
    submissions: list[PoolSubmission] = field(default_factory=list)
    generator_origins: dict[str, str] = field(default_factory=dict)
    generator_lists: set[str] = field(default_factory=set)
    generator_carriers: dict[str, str] = field(default_factory=dict)
    local_types: dict[str, str] = field(default_factory=dict)

    @property
    def line(self) -> int:
        """The 1-based definition line (finding anchor)."""
        return self.node.lineno


class _ModuleBinder:
    """Name bindings of one module: imports, defs, classes, globals."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = ctx.module
        self.imports: dict[str, str] = {}  # local name -> absolute dotted
        self.functions: dict[str, str] = {}  # local name -> fn qname
        self.classes: dict[str, ClassInfo] = {}  # local name -> info
        self.module_generators: dict[str, int] = {}  # gen name -> def line
        self._collect()

    def _collect(self) -> None:
        for node in ast.iter_child_nodes(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b.c` binds `a`; `import a.b.c as x` binds
                    # x to the full dotted path.
                    target = alias.name if alias.asname else local
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are not used in-tree
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = f"{self.module}.{node.name}"
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    qname=f"{self.module}.{node.name}", module=self.module
                )
                for child in node.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info.methods[child.name] = f"{info.qname}.{child.name}"
                    elif isinstance(child, ast.AnnAssign) and isinstance(
                        child.target, ast.Name
                    ):
                        if _annotation_mentions_generator(child.annotation):
                            info.attr_types[child.target.id] = "Generator"
                info.base_chains = [
                    chain
                    for base in node.bases
                    if (chain := dotted_name(base))
                ]
                self.classes[node.name] = info
            elif isinstance(node, ast.Assign):
                if _is_generator_factory_call(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.module_generators[target.id] = node.lineno


def _is_generator_factory_call(node: ast.expr) -> bool:
    """Whether ``node`` is a call to a recognised Generator factory."""
    if not isinstance(node, ast.Call):
        return False
    chain = dotted_name(node.func)
    return bool(chain) and chain[-1] in GENERATOR_FACTORIES


def _is_generator_list_call(node: ast.expr) -> bool:
    """Whether ``node`` is a call producing a list of spawned generators."""
    if not isinstance(node, ast.Call):
        return False
    chain = dotted_name(node.func)
    return bool(chain) and chain[-1] in GENERATOR_LIST_FACTORIES


def _annotation_mentions_generator(node: ast.expr | None) -> bool:
    """Whether a type annotation names ``Generator`` anywhere inside.

    Handles plain names, dotted forms (``np.random.Generator``), string
    annotations and unions — ``int | None | np.random.Generator`` counts,
    which is the conservative direction for rng tracking.
    """
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "Generator":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "Generator":
            return True
    return False


def _annotation_chains(node: ast.expr | None) -> Iterator[tuple[str, ...]]:
    """Every dotted name chain appearing inside an annotation."""
    if node is None:
        return
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
    stack = [node]
    while stack:
        sub = stack.pop()
        chain = dotted_name(sub)
        if chain:
            yield chain
            continue
        stack.extend(ast.iter_child_nodes(sub))


class Project:
    """The resolved project: binders, classes and functions by name.

    Construction is a three-pass process — bind every module, resolve
    class bases and attribute types, then walk every function body for
    call edges — after which :attr:`functions` maps qualified names to
    :class:`FunctionInfo` and :meth:`edges` yields the call graph.
    """

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        """Build the project from parsed file contexts (one lint run)."""
        self.binders: dict[str, _ModuleBinder] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        seen_modules: set[str] = set()
        ordered: list[_ModuleBinder] = []
        for ctx in sorted(contexts, key=lambda c: c.rel_path):
            module = ctx.module
            if module in seen_modules:
                # Two files outside a package root can map to the same
                # bare module name; suffix to keep qnames unique.
                suffix = 2
                while f"{module}#{suffix}" in seen_modules:
                    suffix += 1
                module = f"{module}#{suffix}"
                ctx.module = module
            seen_modules.add(module)
            binder = _ModuleBinder(ctx)
            self.binders[module] = binder
            ordered.append(binder)
        for binder in ordered:
            for info in binder.classes.values():
                self.classes[info.qname] = info
        for binder in ordered:
            self._resolve_bases(binder)
        for binder in ordered:
            self._infer_attr_types(binder)
        for binder in ordered:
            for fn_info in _FunctionWalker(self, binder).walk():
                self.functions[fn_info.qname] = fn_info

    # -- class resolution -------------------------------------------------
    def _resolve_bases(self, binder: _ModuleBinder) -> None:
        for info in binder.classes.values():
            for chain in info.base_chains:
                resolved = self.resolve_in_module(binder, chain)
                if resolved is not None and resolved[0] == "class":
                    info.bases.append(resolved[1])

    def _mro(self, class_qname: str) -> Iterator[ClassInfo]:
        """The class and its project-resolvable ancestors, depth-first."""
        seen: set[str] = set()
        stack = [class_qname]
        while stack:
            qname = stack.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            info = self.classes.get(qname)
            if info is None:
                continue
            yield info
            stack.extend(info.bases)

    def find_method(self, class_qname: str, name: str) -> str | None:
        """Resolve ``name`` on ``class_qname`` walking project bases."""
        for info in self._mro(class_qname):
            if name in info.methods:
                return info.methods[name]
        return None

    def attr_type(self, class_qname: str, attr: str) -> str | None:
        """The inferred type token of ``self.<attr>`` for a class."""
        for info in self._mro(class_qname):
            if attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def _infer_attr_types(self, binder: _ModuleBinder) -> None:
        """Fill ``attr_types`` from ``self.x = ...`` assignments."""
        for info in binder.classes.values():
            class_node = self._class_node(binder, info)
            if class_node is None:
                continue
            for method in class_node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                for stmt in ast.walk(method):
                    target: ast.expr | None = None
                    value: ast.expr | None = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        target = stmt.target
                        if _annotation_mentions_generator(stmt.annotation):
                            chain = dotted_name(target)
                            if len(chain) == 2 and chain[0] == "self":
                                info.attr_types.setdefault(chain[1], "Generator")
                            continue
                        value = stmt.value
                    if target is None or value is None:
                        continue
                    chain = dotted_name(target)
                    if len(chain) != 2 or chain[0] != "self":
                        continue
                    token = self._value_type(binder, method, value)
                    if token is not None:
                        info.attr_types.setdefault(chain[1], token)

    def _class_node(
        self, binder: _ModuleBinder, info: ClassInfo
    ) -> ast.ClassDef | None:
        for node in ast.iter_child_nodes(binder.ctx.tree):
            if (
                isinstance(node, ast.ClassDef)
                and f"{binder.module}.{node.name}" == info.qname
            ):
                return node
        return None

    def _value_type(
        self,
        binder: _ModuleBinder,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        value: ast.expr,
    ) -> str | None:
        """Best-effort type token of an assigned expression."""
        if isinstance(value, ast.IfExp):
            return self._value_type(binder, method, value.body) or self._value_type(
                binder, method, value.orelse
            )
        if _is_generator_factory_call(value):
            return "Generator"
        if _is_generator_list_call(value):
            return "GeneratorList"
        if isinstance(value, ast.Call):
            chain = dotted_name(value.func)
            if chain:
                resolved = self.resolve_in_module(binder, chain)
                if resolved is not None and resolved[0] == "class":
                    return resolved[1]
        if isinstance(value, ast.Name):
            # `self.pool = pool` — type the attribute from the parameter
            # annotation when one names a project class or a Generator.
            for arg in [
                *method.args.posonlyargs,
                *method.args.args,
                *method.args.kwonlyargs,
            ]:
                if arg.arg != value.id:
                    continue
                if _annotation_mentions_generator(arg.annotation):
                    return "Generator"
                for chain in _annotation_chains(arg.annotation):
                    resolved = self.resolve_in_module(binder, chain)
                    if resolved is not None and resolved[0] == "class":
                        return resolved[1]
        return None

    # -- name resolution --------------------------------------------------
    def resolve_absolute(self, dotted: str) -> tuple[str, str] | None:
        """Resolve an absolute dotted name to ``(kind, qname)``.

        ``kind`` is ``"func"`` or ``"class"``.  Matching takes the
        longest known module prefix; the remainder must be a function,
        a class, or a ``Class.method`` pair in that module.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            binder = self.binders.get(module)
            if binder is None:
                continue
            rest = parts[cut:]
            if not rest:
                return None
            if len(rest) == 1:
                if rest[0] in binder.functions:
                    return ("func", binder.functions[rest[0]])
                if rest[0] in binder.classes:
                    return ("class", binder.classes[rest[0]].qname)
                return None
            if len(rest) == 2 and rest[0] in binder.classes:
                method = self.find_method(
                    binder.classes[rest[0]].qname, rest[1]
                )
                if method is not None:
                    return ("func", method)
            return None
        return None

    def resolve_in_module(
        self, binder: _ModuleBinder, chain: tuple[str, ...]
    ) -> tuple[str, str] | None:
        """Resolve a dotted chain in module scope to ``(kind, qname)``."""
        if not chain:
            return None
        head = chain[0]
        if head in binder.functions and len(chain) == 1:
            return ("func", binder.functions[head])
        if head in binder.classes:
            info = binder.classes[head]
            if len(chain) == 1:
                return ("class", info.qname)
            if len(chain) == 2:
                method = self.find_method(info.qname, chain[1])
                if method is not None:
                    return ("func", method)
            return None
        if head in binder.imports:
            dotted = ".".join((binder.imports[head], *chain[1:]))
            return self.resolve_absolute(dotted)
        return None

    def constructor_of(self, class_qname: str) -> str | None:
        """The ``__init__`` a construction call executes, if in-project."""
        return self.find_method(class_qname, "__init__")

    # -- graph views ------------------------------------------------------
    def edges(self) -> Iterator[tuple[str, CallSite]]:
        """Every resolved edge as ``(caller qname, call site)``."""
        for qname in sorted(self.functions):
            for site in self.functions[qname].calls:
                yield qname, site

    def submissions(self) -> Iterator[PoolSubmission]:
        """Every WorkerPool submission site in the project."""
        for qname in sorted(self.functions):
            yield from self.functions[qname].submissions


class _FunctionWalker:
    """Builds :class:`FunctionInfo` records for one module."""

    def __init__(self, project: Project, binder: _ModuleBinder) -> None:
        self.project = project
        self.binder = binder
        self.ctx = binder.ctx

    def walk(self) -> Iterator[FunctionInfo]:
        """Yield an info record for every function, method and nested def."""
        for node in ast.iter_child_nodes(self.ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk_function(
                    node, qname=f"{self.binder.module}.{node.name}", cls=None,
                    closure_gens={},
                )
            elif isinstance(node, ast.ClassDef):
                cls_qname = f"{self.binder.module}.{node.name}"
                for child in node.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        yield from self._walk_function(
                            child,
                            qname=f"{cls_qname}.{child.name}",
                            cls=cls_qname,
                            closure_gens={},
                        )

    # ------------------------------------------------------------------
    def _walk_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qname: str,
        cls: str | None,
        closure_gens: dict[str, str],
    ) -> Iterator[FunctionInfo]:
        params = tuple(
            a.arg
            for a in [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            ]
        )
        info = FunctionInfo(
            qname=qname,
            module=self.binder.module,
            rel_path=self.ctx.rel_path,
            node=node,
            cls=cls,
            params=params,
            is_protocol=self.ctx.is_protocol,
        )
        local_functions = self._collect_locals(node, info, closure_gens)
        self._active_types = info.local_types
        for decorator in node.decorator_list:
            chain = dotted_name(decorator)
            resolved = self._resolve(chain, local_functions, cls)
            if resolved is not None:
                info.calls.append(
                    CallSite(
                        callee=resolved,
                        line=decorator.lineno,
                        kind="decorator",
                        text=".".join(chain),
                    )
                )
        self._scan(node.body, info, local_functions, cls)
        yield info
        # Nested defs become their own nodes; enclosing generator
        # bindings are visible to them as closure streams.
        nested_env = dict(closure_gens)
        for name, origin in info.generator_origins.items():
            nested_env[name] = origin if origin == "spawned" else "closure"
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._enclosing_def(node, child) is node:
                    yield from self._walk_function(
                        child,
                        qname=f"{qname}.{child.name}",
                        cls=cls,
                        closure_gens=nested_env,
                    )

    @staticmethod
    def _enclosing_def(
        root: ast.AST, target: ast.AST
    ) -> ast.AST | None:
        """The innermost def/class enclosing ``target`` under ``root``."""
        result: ast.AST | None = None
        stack: list[tuple[ast.AST, ast.AST | None]] = [(root, None)]
        while stack:
            node, owner = stack.pop()
            if node is target:
                return owner
            next_owner = (
                node
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                else owner
            )
            for child in ast.iter_child_nodes(node):
                stack.append((child, node if next_owner is node else owner))
        return result

    # ------------------------------------------------------------------
    def _collect_locals(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        info: FunctionInfo,
        closure_gens: dict[str, str],
    ) -> dict[str, str]:
        """Populate generator/type bindings; return local fn aliases."""
        local_functions: dict[str, str] = {}
        local_types = info.local_types
        gens = info.generator_origins
        gens.update(closure_gens)
        for name in self.binder.module_generators:
            gens.setdefault(name, "module-global")
        if info.cls is not None:
            cls_info = self.project.classes.get(info.cls)
            if cls_info is not None:
                for attr in sorted(cls_info.attr_types):
                    if self.project.attr_type(info.cls, attr) == "Generator":
                        gens[f"self.{attr}"] = "attribute"
        for arg in [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]:
            if _annotation_mentions_generator(arg.annotation):
                gens[arg.arg] = "param"
            else:
                for chain in _annotation_chains(arg.annotation):
                    resolved = self.project.resolve_in_module(
                        self.binder, chain
                    )
                    if resolved is not None and resolved[0] == "class":
                        local_types[arg.arg] = resolved[1]
                        break
        # Two binding passes in document order: derived bindings (e.g. a
        # loop over a spawn_rngs list assigned later in the body) settle
        # on the second pass without a full dataflow fixpoint.
        scope_nodes = list(self._own_scope_walk(node.body))
        for _ in range(2):
            for stmt in scope_nodes:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local_functions[stmt.name] = f"{info.qname}.{stmt.name}"
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    self._bind_assignment(
                        stmt.targets[0], stmt.value, info, local_functions,
                        local_types,
                    )
                elif isinstance(stmt, ast.AnnAssign):
                    name_chain = dotted_name(stmt.target)
                    if len(name_chain) == 1 and _annotation_mentions_generator(
                        stmt.annotation
                    ):
                        gens[name_chain[0]] = "param"
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    self._bind_loop_targets(stmt.target, stmt.iter, info)
                elif isinstance(
                    stmt,
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
                ):
                    for gen_clause in stmt.generators:
                        self._bind_loop_targets(
                            gen_clause.target, gen_clause.iter, info
                        )
        return local_functions

    def _own_scope_walk(self, body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
        """Pre-order walk of a body, not descending into nested scopes.

        Nested ``def`` statements are yielded (so aliases bind) but not
        entered; classes and lambdas are skipped entirely.
        """
        stack: list[ast.AST] = list(reversed(body))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            for child in reversed(list(ast.iter_child_nodes(node))):
                stack.append(child)

    def _bind_assignment(
        self,
        target: ast.expr,
        value: ast.expr,
        info: FunctionInfo,
        local_functions: dict[str, str],
        local_types: dict[str, str],
    ) -> None:
        chain = dotted_name(target)
        if len(chain) != 1:
            return
        name = chain[0]
        if _is_generator_factory_call(value):
            info.generator_origins[name] = "ensured"
            return
        if _is_generator_list_call(value):
            info.generator_lists.add(name)
            return
        if isinstance(value, ast.Subscript):
            base = ".".join(dotted_name(value.value))
            if base in info.generator_lists:
                info.generator_origins[name] = "spawned"
                return
        if isinstance(value, ast.Name):
            src = value.id
            if src in info.generator_origins:
                info.generator_origins[name] = info.generator_origins[src]
                return
            resolved = self._resolve((src,), local_functions, info.cls)
            if resolved is not None:
                local_functions[name] = resolved
                return
        if isinstance(value, ast.IfExp):
            for branch in (value.body, value.orelse):
                self._bind_assignment(
                    target, branch, info, local_functions, local_types
                )
            return
        if isinstance(value, ast.Call):
            fchain = dotted_name(value.func)
            if fchain:
                resolved_t = self.project.resolve_in_module(
                    self.binder, fchain
                )
                if resolved_t is not None and resolved_t[0] == "class":
                    local_types[name] = resolved_t[1]
                    return
        origin = self._embedded_generator(value, info)
        if origin is not None:
            info.generator_carriers[name] = origin

    def _bind_loop_targets(
        self, target: ast.expr, iterable: ast.expr, info: FunctionInfo
    ) -> None:
        """Type loop/comprehension targets drawn from generator lists."""
        iter_chain = dotted_name(iterable)
        src = ".".join(iter_chain)
        if src in info.generator_lists or _is_generator_list_call(iterable):
            if isinstance(target, ast.Name):
                info.generator_origins[target.id] = "spawned"
            return
        if isinstance(iterable, ast.Call):
            fchain = dotted_name(iterable.func)
            terminal = fchain[-1] if fchain else ""
            if terminal in ("zip", "enumerate") and isinstance(
                target, ast.Tuple
            ):
                args = iterable.args
                if terminal == "enumerate":
                    args = [ast.Constant(value=0), *args]
                for pos, arg in enumerate(args):
                    arg_src = ".".join(dotted_name(arg))
                    if (
                        arg_src in info.generator_lists
                        or _is_generator_list_call(arg)
                    ) and pos < len(target.elts):
                        elt = target.elts[pos]
                        if isinstance(elt, ast.Name):
                            info.generator_origins[elt.id] = "spawned"

    # ------------------------------------------------------------------
    def _embedded_generator(
        self, expr: ast.expr, info: FunctionInfo
    ) -> str | None:
        """Origin of a *bare* non-spawned generator embedded in ``expr``.

        A generator name used as a method receiver (``g.normal(...)``)
        produces data, not a stream, and is not embedding; a bare
        reference (``Task(g, ...)``) ships the stream object itself.
        """
        parents: dict[int, ast.AST] = {}
        for parent in ast.walk(expr):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        for node in ast.walk(expr):
            chain = dotted_name(node)
            if not chain:
                continue
            name = ".".join(chain)
            origin = info.generator_origins.get(name)
            if origin is None and name in info.generator_carriers:
                origin = info.generator_carriers[name]
            if origin is None or origin == "spawned":
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue  # receiver position: a draw, not an embed
            if isinstance(parent, ast.Call) and parent.func is node:
                continue  # call position
            return origin
        return None

    # ------------------------------------------------------------------
    def _resolve(
        self,
        chain: tuple[str, ...],
        local_functions: dict[str, str],
        cls: str | None,
    ) -> str | None:
        """Resolve a call/reference chain to a function qname, or None."""
        if not chain:
            return None
        head = chain[0]
        if head in local_functions:
            if len(chain) == 1:
                return local_functions[head]
            return None
        if head in ("self", "cls") and cls is not None:
            if len(chain) == 2:
                return self.project.find_method(cls, chain[1])
            if len(chain) == 3:
                token = self.project.attr_type(cls, chain[1])
                if token is not None and token in self.project.classes:
                    return self.project.find_method(token, chain[2])
            return None
        local_types: dict[str, str] = getattr(self, "_active_types", {})
        if head in local_types and len(chain) == 2:
            return self.project.find_method(local_types[head], chain[1])
        resolved = self.project.resolve_in_module(self.binder, chain)
        if resolved is None:
            return None
        kind, qname = resolved
        if kind == "func":
            return qname
        return self.project.constructor_of(qname)

    def _scan(
        self,
        body: Sequence[ast.stmt],
        info: FunctionInfo,
        local_functions: dict[str, str],
        cls: str | None,
    ) -> None:
        """Collect call, ref and submission sites from a function body."""
        self._active_types = info.local_types
        stack: list[ast.AST] = list(body)
        func_position: set[int] = set()
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue  # separate scopes/nodes
            if isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                resolved = self._resolve(chain, local_functions, cls)
                if resolved is not None:
                    info.calls.append(
                        CallSite(
                            callee=resolved,
                            line=node.lineno,
                            kind="call",
                            text=".".join(chain),
                        )
                    )
                if chain:
                    for sub in ast.walk(node.func):
                        func_position.add(id(sub))
                if chain and chain[-1] in POOL_SUBMIT_METHODS and node.args:
                    info.submissions.append(
                        self._submission(node, info, local_functions, cls)
                    )
            chain = dotted_name(node)
            if chain and id(node) not in func_position:
                resolved = self._resolve(chain, local_functions, cls)
                if resolved is not None:
                    info.calls.append(
                        CallSite(
                            callee=resolved,
                            line=node.lineno,
                            kind="ref",
                            text=".".join(chain),
                        )
                    )
                continue  # don't descend into parts of a matched chain
            for child in ast.iter_child_nodes(node):
                stack.append(child)

    def _submission(
        self,
        node: ast.Call,
        info: FunctionInfo,
        local_functions: dict[str, str],
        cls: str | None,
    ) -> PoolSubmission:
        fn_arg = node.args[0]
        fn_chain = dotted_name(fn_arg)
        resolved = self._resolve(fn_chain, local_functions, cls)
        tasks = node.args[1] if len(node.args) > 1 else None
        shared = (
            self._embedded_generator(tasks, info) if tasks is not None else None
        )
        return PoolSubmission(
            caller=info.qname,
            callee=resolved,
            callee_text=".".join(fn_chain) if fn_chain else type(fn_arg).__name__,
            is_lambda=isinstance(fn_arg, ast.Lambda),
            line=node.lineno,
            tasks=tasks,
            shared_stream_origin=shared,
        )
