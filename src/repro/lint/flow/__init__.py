"""Interprocedural flow analysis for :mod:`repro.lint`.

Every rule in the base linter is local to one function body, but the
repository's determinism contract is a *whole-program* property: a
protocol function that reaches ``time.time()`` or an unseeded
``default_rng()`` through two helper frames is exactly as broken as one
that calls it directly.  This package closes that gap with three
layers, each consumed by the interprocedural rules in
:mod:`repro.lint.rules`:

* :mod:`repro.lint.flow.callgraph` — a project-wide call graph built
  from module/import resolution and name binding over the linted tree,
  handling methods (``self.``/``cls.``/typed receivers), decorators and
  first-class function references with a conservative fallback;
* :mod:`repro.lint.flow.effects` — a per-function *direct* effect scan
  over the effect lattice (:data:`~repro.lint.flow.effects.EFFECT_ATOMS`)
  plus forbidden-site detection, and a fixpoint propagation pass that
  folds effects transitively through the graph (cycles collapse via
  SCC condensation);
* :mod:`repro.lint.flow.analysis` — the :class:`FlowAnalysis` facade
  the engine builds once per run: transitive effect queries, offending
  call-chain reconstruction, and the ``WorkerPool`` submission registry
  behind ``parallel-task-purity`` / ``rng-stream-discipline``.

Machine-readable artifacts (the ``--effects-out`` / ``--callgraph``
CLI flags and the ``effects-baseline.json`` drift gate) live in
:mod:`repro.lint.flow.artifacts`.
"""

from __future__ import annotations

from repro.lint.flow.analysis import CallChain, FlowAnalysis
from repro.lint.flow.artifacts import (
    EFFECTS_SCHEMA_VERSION,
    effect_summary,
    effects_drift,
    render_callgraph_dot,
    write_callgraph,
    write_effects,
)
from repro.lint.flow.callgraph import CallSite, FunctionInfo, PoolSubmission, Project
from repro.lint.flow.effects import EFFECT_ATOMS, SITE_KINDS, EffectSite

__all__ = [
    "CallChain",
    "CallSite",
    "EFFECTS_SCHEMA_VERSION",
    "EFFECT_ATOMS",
    "EffectSite",
    "FlowAnalysis",
    "FunctionInfo",
    "PoolSubmission",
    "Project",
    "SITE_KINDS",
    "effect_summary",
    "effects_drift",
    "render_callgraph_dot",
    "write_callgraph",
    "write_effects",
]
