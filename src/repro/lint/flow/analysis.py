"""The :class:`FlowAnalysis` facade the lint engine builds once per run.

It ties the three flow layers together: construct the
:class:`~repro.lint.flow.callgraph.Project`, scan direct effect sites
(:func:`~repro.lint.flow.effects.direct_sites`), fold in
unordered-iteration sites from the local iteration rule's scanner, and
propagate everything transitively.  Interprocedural rules consume the
result through three queries:

* :meth:`FlowAnalysis.effects_of` / :meth:`FlowAnalysis.kinds_of` —
  the settled transitive effect set of one function;
* :meth:`FlowAnalysis.chain_to` — a shortest offending call chain from
  a function to a direct site of a given kind (BFS over sorted
  successor lists, so the chain reported is deterministic);
* :meth:`FlowAnalysis.protocol_frontier` — the *frontier* findings the
  upgraded determinism rules print: a protocol function is flagged for
  kind ``K`` only when it reaches a ``K``-site through a chain lying
  entirely in non-protocol code.  Direct sites in protocol modules are
  already the local rules' findings, and flagging every transitive
  ancestor inside the protocol would report one leak hundreds of
  times; the frontier names exactly the functions where determinism
  responsibility crosses the package boundary.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.lint.engine import FileContext
from repro.lint.flow.callgraph import FunctionInfo, PoolSubmission, Project
from repro.lint.flow.effects import (
    EFFECT_ATOMS,
    EffectSite,
    call_adjacency,
    direct_sites,
    is_barrier_module,
    propagate,
)


@dataclass(frozen=True, slots=True)
class CallChain:
    """A concrete path from a function to a direct effect site.

    ``functions`` runs caller-first and ends at the function owning
    ``site``; a single-element chain means the site is direct.
    """

    functions: tuple[str, ...]
    site: EffectSite

    def render(self, site_path: str) -> str:
        """The ``a -> b -> c`` rendering used in finding messages."""
        arrow = " -> ".join(self.functions)
        return f"{arrow} [{self.site.detail} at {site_path}:{self.site.line}]"


class FlowAnalysis:
    """Project-wide call graph + transitive effects, built once per run."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        """Build the full analysis from the run's parsed file contexts."""
        self.contexts: dict[str, FileContext] = {
            ctx.rel_path: ctx for ctx in contexts
        }
        self.project = Project(list(contexts))
        self.direct: dict[str, list[EffectSite]] = direct_sites(self.project)
        self._inject_unordered_iteration()
        self.adjacency: dict[str, tuple[str, ...]] = call_adjacency(
            self.project
        )
        self.transitive: dict[str, frozenset[str]] = propagate(
            self.project, self.direct
        )

    # -- construction helpers ---------------------------------------------
    def _inject_unordered_iteration(self) -> None:
        """Fold the iteration rule's site scan into the direct-site map.

        The local rule only *reports* in protocol modules; as an effect
        source it applies everywhere (a helper in ``repro.analysis``
        folding a set still corrupts a protocol caller's determinism),
        so the gate-free :meth:`NoUnorderedIterationRule.scan` runs on
        every non-barrier file and each hit is attributed to the
        innermost enclosing function.
        """
        from repro.lint.rules.iteration import NoUnorderedIterationRule

        rule = NoUnorderedIterationRule()
        spans = self._function_spans()
        for rel_path in sorted(self.contexts):
            ctx = self.contexts[rel_path]
            if is_barrier_module(ctx.module):
                continue
            for finding in rule.scan(ctx):
                owner = self._innermost(spans.get(ctx.module, []), finding.line)
                if owner is None:
                    continue
                self.direct[owner].append(
                    EffectSite(
                        qname=owner,
                        kind="unordered-iteration",
                        line=finding.line,
                        detail="order-sensitive iteration over a set",
                    )
                )
        for qname in self.direct:
            self.direct[qname].sort(key=lambda s: (s.line, s.kind))

    def _function_spans(
        self,
    ) -> dict[str, list[tuple[int, int, str]]]:
        """Per-module ``(start, end, qname)`` line spans, innermost-last."""
        spans: dict[str, list[tuple[int, int, str]]] = {}
        for qname in sorted(self.project.functions):
            fn = self.project.functions[qname]
            node = fn.node
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            spans.setdefault(fn.module, []).append((node.lineno, end, qname))
        return spans

    @staticmethod
    def _innermost(
        spans: list[tuple[int, int, str]], line: int
    ) -> str | None:
        """The qname of the smallest function span containing ``line``."""
        best: tuple[int, str] | None = None
        for start, end, qname in spans:
            if start <= line <= end:
                size = end - start
                if best is None or size < best[0]:
                    best = (size, qname)
        return best[1] if best is not None else None

    # -- queries ------------------------------------------------------------
    def function(self, qname: str) -> FunctionInfo | None:
        """The :class:`FunctionInfo` for ``qname``, if it exists."""
        return self.project.functions.get(qname)

    def kinds_of(self, qname: str) -> frozenset[str]:
        """The transitive *site kind* set of a function (refinements in)."""
        return self.transitive.get(qname, frozenset())

    def effects_of(self, qname: str) -> frozenset[str]:
        """The transitive public effect set (lattice atoms only)."""
        return self.kinds_of(qname) & frozenset(EFFECT_ATOMS)

    def site_path(self, site: EffectSite) -> str:
        """The repo-relative path of the file owning ``site``."""
        fn = self.project.functions.get(site.qname)
        return fn.rel_path if fn is not None else "<unknown>"

    def chain_to(
        self,
        start: str,
        kind: str,
        *,
        protocol_ok: bool = True,
        include_start: bool = True,
    ) -> CallChain | None:
        """A shortest call chain from ``start`` to a ``kind`` site.

        BFS over sorted successor lists, so ties break deterministically.
        With ``protocol_ok=False``, nodes past ``start`` (intermediates
        *and* the site holder) must live outside protocol packages —
        the frontier restriction.  With ``include_start=False``,
        ``start``'s own direct sites do not terminate the search.
        """
        if start not in self.project.functions:
            return None
        prev: dict[str, str | None] = {start: None}
        queue: deque[str] = deque([start])
        while queue:
            node = queue.popleft()
            if node != start or include_start:
                for site in self.direct.get(node, ()):
                    if kind in site.kinds:
                        chain: list[str] = []
                        cursor: str | None = node
                        while cursor is not None:
                            chain.append(cursor)
                            cursor = prev[cursor]
                        return CallChain(tuple(reversed(chain)), site)
            for callee in self.adjacency.get(node, ()):
                if callee in prev:
                    continue
                if (
                    not protocol_ok
                    and self.project.functions[callee].is_protocol
                ):
                    continue
                prev[callee] = node
                queue.append(callee)
        return None

    def protocol_frontier(
        self, kind: str
    ) -> Iterator[tuple[FunctionInfo, CallChain]]:
        """Protocol functions reaching ``kind`` only through outside code.

        Skips functions holding a direct ``kind`` site (the local rule's
        territory) and yields ``(function, chain)`` in qname order.
        """
        for qname in sorted(self.project.functions):
            fn = self.project.functions[qname]
            if not fn.is_protocol:
                continue
            if kind not in self.kinds_of(qname):
                continue
            if any(kind in s.kinds for s in self.direct.get(qname, ())):
                continue
            chain = self.chain_to(
                qname, kind, protocol_ok=False, include_start=False
            )
            if chain is not None:
                yield fn, chain

    def submissions(self) -> list[PoolSubmission]:
        """Every WorkerPool submission site, in deterministic order."""
        return list(self.project.submissions())

    def module_generators(self) -> Iterator[tuple[FileContext, str, int]]:
        """Module-level Generator bindings: ``(ctx, name, line)`` tuples."""
        for module in sorted(self.project.binders):
            binder = self.project.binders[module]
            if is_barrier_module(module):
                continue
            for name in sorted(binder.module_generators):
                yield binder.ctx, name, binder.module_generators[name]

    def context_for(self, rel_path: str) -> FileContext | None:
        """The parsed file context for a repo-relative path, if linted."""
        return self.contexts.get(rel_path)
