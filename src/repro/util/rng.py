"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible bit-for-bit: an experiment seeds one root
generator and hands out independent child streams via :func:`spawn_rngs`.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: The seed-or-generator union every stochastic entry point accepts.
RngLike: TypeAlias = "int | None | np.random.Generator"


def ensure_rng(rng: int | None | np.random.Generator) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh non-deterministic generator; an integer is used
    as a seed; an existing generator is returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: int | None | np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses the SeedSequence spawning protocol, so children never overlap and
    the derivation is itself deterministic given the parent.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    parent = ensure_rng(rng)
    seeds = parent.bit_generator.seed_seq.spawn(n)  # type: ignore[union-attr]
    return [np.random.default_rng(s) for s in seeds]
