"""Statistics helpers used by the analysis layer.

These are thin, vectorised wrappers around NumPy that give the experiment
code a stable vocabulary: distribution summaries, Gini coefficients (for
load-imbalance measurement), histograms over explicit bins, and empirical
CDF points (figure 7(b) of the paper is a CDF of moved load by distance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summary(values: np.ndarray | list[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for ``values`` (must be non-empty)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("summary() of an empty sample")
    q = np.percentile(arr, [25, 50, 75, 95, 99])
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p25=float(q[0]),
        median=float(q[1]),
        p75=float(q[2]),
        p95=float(q[3]),
        p99=float(q[4]),
        maximum=float(arr.max()),
    )


def gini_coefficient(values: np.ndarray | list[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, ->1 = skewed).

    Used as a scalar load-imbalance metric alongside the paper's
    scatterplots.  All-zero samples are perfectly equal (0.0).
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ValueError("gini_coefficient() of an empty sample")
    if np.any(arr < 0):
        raise ValueError("gini_coefficient() requires non-negative values")
    total = arr.sum()
    if total == 0.0:
        return 0.0
    n = arr.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * arr) - (n + 1) * total) / (n * total))


def histogram_by_bins(
    values: np.ndarray | list[float],
    weights: np.ndarray | list[float] | None,
    bin_edges: np.ndarray | list[float],
) -> np.ndarray:
    """Weighted histogram over explicit ``bin_edges`` (right edge inclusive last).

    Returns the *fraction* of total weight per bin, which is how the paper
    reports "percentage of total moved load" per hop-distance bucket.
    """
    vals = np.asarray(values, dtype=np.float64)
    w = None if weights is None else np.asarray(weights, dtype=np.float64)
    counts, _ = np.histogram(vals, bins=np.asarray(bin_edges, dtype=np.float64), weights=w)
    total = counts.sum()
    if total == 0.0:
        return np.zeros_like(counts, dtype=np.float64)
    return counts / total


def cdf_points(
    values: np.ndarray | list[float],
    weights: np.ndarray | list[float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical (weighted) CDF of ``values``.

    Returns ``(xs, ps)`` where ``ps[i]`` is the fraction of total weight
    with value ``<= xs[i]``.  ``xs`` is sorted and deduplicated.
    """
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        return np.empty(0), np.empty(0)
    w = (
        np.ones_like(vals)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    if w.shape != vals.shape:
        raise ValueError("weights must match values in shape")
    order = np.argsort(vals, kind="stable")
    vals = vals[order]
    w = w[order]
    cum = np.cumsum(w)
    total = cum[-1]
    if total == 0.0:
        raise ValueError("cdf_points() with zero total weight")
    # Deduplicate: keep the last cumulative value per distinct x.
    keep = np.r_[vals[1:] != vals[:-1], True]
    return vals[keep], cum[keep] / total


def weighted_fraction_within(
    values: np.ndarray | list[float],
    weights: np.ndarray | list[float],
    threshold: float,
) -> float:
    """Fraction of total weight whose value is ``<= threshold``.

    Directly answers claims like "67% of total moved load within 2 hops".
    """
    vals = np.asarray(values, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    total = w.sum()
    if total == 0.0:
        return 0.0
    return float(w[vals <= threshold].sum() / total)
