"""A small sorted-list container with key-based bisection.

The VSA rendezvous procedure (paper Section 3.4) maintains two sorted
lists at each KT node: light-node advertisements sorted by spare capacity
``delta_L`` and shed-candidate virtual servers sorted by load.  Pairing
needs, repeatedly:

* pop the item with the largest key (heaviest virtual server),
* find the item with the smallest key ``>= x`` (best-fit light node),
* insert items keeping order (remainder reinsertion).

:class:`SortedKeyList` provides exactly those operations in
``O(log n)`` lookup / ``O(n)`` insertion (list-backed, which is faster
than tree structures at the list sizes involved — the threshold is 30).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort_right
from typing import Callable, Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")


class SortedKeyList(Generic[T]):
    """A list of items kept sorted by ``key(item)``.

    Ties are kept in insertion order (stable).
    """

    __slots__ = ("_key", "_keys", "_items")

    def __init__(
        self, items: Iterable[T] = (), *, key: Callable[[T], float]
    ) -> None:
        self._key = key
        pairs = sorted(((key(it), i) for i, it in enumerate(items)))
        src = list(items)
        self._keys: list[float] = [k for k, _ in pairs]
        self._items: list[T] = [src[i] for _, i in pairs]

    # -- basic container protocol ---------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __getitem__(self, index: int) -> T:
        return self._items[index]

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SortedKeyList({self._items!r})"

    # -- mutation --------------------------------------------------------
    def add(self, item: T) -> None:
        """Insert ``item`` keeping the list sorted by key."""
        k = self._key(item)
        idx = bisect_right(self._keys, k)
        self._keys.insert(idx, k)
        self._items.insert(idx, item)

    def pop_max(self) -> T:
        """Remove and return the item with the largest key."""
        if not self._items:
            raise IndexError("pop from empty SortedKeyList")
        self._keys.pop()
        return self._items.pop()

    def pop_min(self) -> T:
        """Remove and return the item with the smallest key."""
        if not self._items:
            raise IndexError("pop from empty SortedKeyList")
        self._keys.pop(0)
        return self._items.pop(0)

    def pop_at(self, index: int) -> T:
        """Remove and return the item at ``index``."""
        self._keys.pop(index)
        return self._items.pop(index)

    # -- queries ----------------------------------------------------------
    def peek_max(self) -> T:
        if not self._items:
            raise IndexError("peek on empty SortedKeyList")
        return self._items[-1]

    def peek_min(self) -> T:
        if not self._items:
            raise IndexError("peek on empty SortedKeyList")
        return self._items[0]

    def index_first_at_least(self, threshold: float) -> int | None:
        """Index of the first item with ``key >= threshold``, or ``None``.

        This implements the best-fit rule: the light node minimising
        ``delta_L`` subject to ``delta_L >= L_{i,k}``.
        """
        idx = bisect_left(self._keys, threshold)
        if idx >= len(self._keys):
            return None
        return idx

    def keys(self) -> list[float]:
        """A copy of the sorted key list (mainly for tests)."""
        return list(self._keys)

    def to_list(self) -> list[T]:
        """A copy of the items in sorted order."""
        return list(self._items)


def insort_unique(values: list[int], value: int) -> bool:
    """Insert ``value`` into sorted ``values`` unless present; return whether inserted."""
    idx = bisect_left(values, value)
    if idx < len(values) and values[idx] == value:
        return False
    insort_right(values, value)
    return True
