"""Shared utilities: RNG handling, sorted containers, statistics helpers."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.sortedlist import SortedKeyList
from repro.util.stats import (
    cdf_points,
    gini_coefficient,
    histogram_by_bins,
    summary,
    SummaryStats,
    weighted_fraction_within,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "SortedKeyList",
    "cdf_points",
    "gini_coefficient",
    "histogram_by_bins",
    "summary",
    "SummaryStats",
    "weighted_fraction_within",
]
